"""Seeded synthetic multi-tenant workload traces for fleet-at-scale runs.

The fleet benchmarks and examples need *large* job populations (hundreds to
thousands of jobs over ~1k devices) with realistic arrival structure —
which the hand-written job lists of the unit tests cannot provide.  This
module generates such populations deterministically:

* **Arrivals** follow an inhomogeneous Poisson process sampled by
  thinning: a diurnal sinusoid modulates the base rate (day/night load
  swing) and periodic *burst windows* multiply it (batch-submission
  spikes), the two canonical shapes of production cluster traces.
* **Jobs** mix decoder-only and encoder-decoder model families of several
  sizes (different pipeline depths, base iteration times and
  data-parallel widths), three priority tiers, and a handful of tenants.
* **Faults** reuse the :mod:`repro.fleet.faults` generators: a seeded
  failure storm across the whole trace span plus correlated rack outages,
  serialised into the trace so a replay sees the identical fault plan.

A trace is a plain-data :class:`WorkloadTrace` — JSON round-trippable, so
generated traces can be stored, shipped and replayed bit-identically.
Replay materialises each :class:`TraceJob` into a real
:class:`~repro.fleet.job.JobSpec` whose planner is a
:class:`SyntheticTracePlanner`: a constant-work stub that skips real
planning and instead synthesises the iteration time from the job's seeded
jitter stream (``execute_plans=False`` makes the trainer adopt it as the
measured time).  This keeps replay cost proportional to the *scheduler's*
work — exactly what the fleet-at-scale benchmark wants to measure — while
exercising the full admission/eviction/failure machinery.

Determinism contract: ``generate_trace(seed=s)`` is bit-stable across
processes (string-seeded :class:`random.Random` streams only), and
``replay_trace`` of equal traces under equal policy/core produces
bit-identical :class:`~repro.fleet.metrics.FleetReport` summaries.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.batching.metrics import PaddingStats
from repro.cluster.device import DeviceSpec
from repro.cluster.topology import ClusterTopology
from repro.core.execution_plan import ExecutionPlan, PlanMetadata
from repro.core.planner import IterationPlan, ReplicaPlanResult
from repro.core.recomputation import RecomputeMode
from repro.costmodel.cost_model import CostModel
from repro.data.tasks import Sample
from repro.fleet.faults import FaultInjector, FaultPlan, failure_storm, rack_outage
from repro.fleet.job import JobSpec
from repro.fleet.metrics import FleetReport
from repro.fleet.scheduler import FleetConfig, FleetScheduler
from repro.model.config import ModelArch, ModelConfig
from repro.parallel.config import ParallelConfig

# ---------------------------------------------------------------------- catalog

#: Tokens per iteration of every trace job.  Each synthetic sample is sized
#: to fill one mini-batch exactly (``total_tokens == GLOBAL_BATCH_TOKENS``),
#: so a job's epoch length equals the shared sample-pool size and
#: ``num_iterations`` maps 1:1 onto mini-batches.
GLOBAL_BATCH_TOKENS = 2048

#: Shared sample-pool size — the upper bound of a trace job's iterations.
TRACE_EPOCH_SAMPLES = 64


@dataclass(frozen=True)
class WorkloadModel:
    """One model family of the synthetic workload mix.

    Attributes:
        key: Catalog key stored in the trace (``"gpt-small"``...).
        arch: ``"gpt"`` (decoder-only) or ``"t5"`` (encoder-decoder).
        pipeline_parallel: Pipeline depth of one replica.
        tensor_parallel: Tensor-parallel degree within each stage.
        base_iteration_ms: Mean iteration time at the requested width.
        dp_choices: Data-parallel widths the generator draws from.
        weight: Relative sampling weight in the mix.
    """

    key: str
    arch: str
    pipeline_parallel: int
    tensor_parallel: int
    base_iteration_ms: float
    dp_choices: tuple[int, ...]
    weight: float


#: The default model mix: small jobs dominate (as in production traces),
#: large pipelines are rare but occupy big gangs for a long time.
MODEL_CATALOG: tuple[WorkloadModel, ...] = (
    WorkloadModel("gpt-small", "gpt", 1, 1, 400.0, (1, 2, 4), 0.40),
    WorkloadModel("gpt-medium", "gpt", 2, 1, 900.0, (1, 2, 4), 0.25),
    WorkloadModel("gpt-large", "gpt", 4, 1, 2200.0, (2, 4), 0.10),
    WorkloadModel("t5-small", "t5", 1, 1, 500.0, (1, 2, 4), 0.15),
    WorkloadModel("t5-large", "t5", 2, 1, 1400.0, (2, 4), 0.10),
)

_MODELS: dict[str, WorkloadModel] = {m.key: m for m in MODEL_CATALOG}

#: Device used by every trace job's cost model.  Memory is generous: trace
#: replay never plans for real, so memory limits should not bind.
_TRACE_DEVICE = DeviceSpec(
    name="trace-gpu-16GB",
    peak_flops=100e12,
    memory_bandwidth=1e12,
    memory_capacity=16 * 1024**3,
)

_COST_MODELS: dict[str, CostModel] = {}
_SAMPLE_POOLS: dict[str, list[Sample]] = {}


def workload_cost_model(key: str) -> CostModel:
    """The (cached) tiny cost model of catalog entry ``key``.

    Trace replay only uses the cost model for stage bookkeeping (the
    synthetic planner never queries costs), so the underlying model is
    deliberately tiny — building all five catalog entries takes well under
    a second and happens once per process.
    """
    model = _MODELS[key]
    cached = _COST_MODELS.get(key)
    if cached is not None:
        return cached
    arch = ModelArch.GPT if model.arch == "gpt" else ModelArch.T5
    config = ModelConfig(
        name=f"trace-{key}",
        arch=arch,
        # num_layers is per encoder/decoder block for T5; keep >= stages.
        num_layers=max(2, model.pipeline_parallel),
        hidden_size=256,
        num_heads=4,
        kv_channels=64,
        ffn_hidden_size=1024,
        vocab_size=32000,
    )
    cost_model = CostModel(
        config,
        num_stages=model.pipeline_parallel,
        device_spec=_TRACE_DEVICE,
        max_profile_batch_size=8,
        max_profile_seq_len=1024,
    )
    _COST_MODELS[key] = cost_model
    return cost_model


def _sample_pool(arch: str) -> list[Sample]:
    """Shared per-architecture sample pool; every sample fills one batch."""
    cached = _SAMPLE_POOLS.get(arch)
    if cached is not None:
        return cached
    if arch == "gpt":
        samples = [
            Sample(input_tokens=GLOBAL_BATCH_TOKENS, target_tokens=0, task="trace")
            for _ in range(TRACE_EPOCH_SAMPLES)
        ]
    else:
        samples = [
            Sample(
                input_tokens=GLOBAL_BATCH_TOKENS * 3 // 4,
                target_tokens=GLOBAL_BATCH_TOKENS // 4,
                task="trace",
            )
            for _ in range(TRACE_EPOCH_SAMPLES)
        ]
    _SAMPLE_POOLS[arch] = samples
    return samples


# ---------------------------------------------------------------------- planner


class SyntheticTracePlanner:
    """Constant-work planner replaying a trace job's seeded iteration times.

    Stands in for :class:`~repro.core.planner.DynaPipePlanner` during trace
    replay: ``plan`` synthesises the iteration time instead of solving the
    micro-batching problem, so replay cost is dominated by the *scheduler*,
    not by planning.  The iteration time is

    ``base_iteration_ms × (requested_dp / data_parallel) × jitter``

    — elastic shrink slows a job down proportionally (weak-scaling loss of
    the lost replicas), and ``jitter`` is drawn per iteration from
    ``random.Random(f"{seed}:{iteration}")`` so the stream is process-stable
    and independent of how attempts are split across retries (a re-run
    iteration re-draws the identical jitter).

    The returned :class:`~repro.core.planner.IterationPlan` carries one
    empty per-replica :class:`~repro.core.execution_plan.ExecutionPlan`
    (``execute_plans=False`` replay never executes instructions) and exact
    padding statistics — synthetic samples are padding-free by construction.
    """

    def __init__(
        self,
        cost_model: CostModel,
        data_parallel_size: int,
        requested_data_parallel: int,
        base_iteration_ms: float,
        seed: int,
    ) -> None:
        if data_parallel_size < 1:
            raise ValueError(f"data_parallel_size must be >= 1, got {data_parallel_size}")
        self.cost_model = cost_model
        self.data_parallel_size = data_parallel_size
        self.requested_data_parallel = max(requested_data_parallel, data_parallel_size)
        self.base_iteration_ms = base_iteration_ms
        self.seed = seed

    def iteration_ms(self, iteration: int) -> float:
        """The synthetic execution time of ``iteration`` at this width."""
        jitter = 0.9 + 0.2 * random.Random(f"{self.seed}:{iteration}").random()
        scale = self.requested_data_parallel / self.data_parallel_size
        return self.base_iteration_ms * scale * jitter

    def plan(self, samples: Sequence[Sample], iteration: int = 0) -> IterationPlan:
        """Synthesise the iteration's plan (no search, no cost queries)."""
        predicted_ms = self.iteration_ms(iteration)
        actual_tokens = sum(s.total_tokens for s in samples)
        decoder_only = not self.cost_model.config.is_encoder_decoder
        padding = PaddingStats(
            actual_tokens=actual_tokens,
            padded_tokens=actual_tokens,
            encoder_efficiency=1.0,
            decoder_efficiency=None if decoder_only else 1.0,
            overall_efficiency=1.0,
        )
        num_stages = self.cost_model.num_stages
        replicas = [
            ReplicaPlanResult(
                plan=ExecutionPlan(
                    device_instructions=[[] for _ in range(num_stages)],
                    microbatch_shapes=[],
                    metadata=PlanMetadata(
                        iteration=iteration,
                        replica=replica,
                        schedule_name="synthetic-trace",
                        recompute=RecomputeMode.NONE,
                        predicted_makespan_ms=predicted_ms,
                    ),
                ),
                micro_batches=[],
                simulation=None,
            )
            for replica in range(self.data_parallel_size)
        ]
        return IterationPlan(
            replicas=replicas,
            recompute=RecomputeMode.NONE,
            predicted_iteration_ms=predicted_ms,
            data_parallel_comm_ms=0.0,
            padding=padding,
            dp_solution=None,
            planning_time_s=0.0,
        )


# ------------------------------------------------------------------------ trace


@dataclass(frozen=True)
class TraceJob:
    """One job of a workload trace (plain data, JSON round-trippable)."""

    name: str
    model: str
    data_parallel: int
    num_iterations: int
    priority: int
    tenant: str
    submit_time_ms: float
    seed: int
    max_retries: int = 2

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "name": self.name,
            "model": self.model,
            "data_parallel": self.data_parallel,
            "num_iterations": self.num_iterations,
            "priority": self.priority,
            "tenant": self.tenant,
            "submit_time_ms": self.submit_time_ms,
            "seed": self.seed,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TraceJob":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=str(payload["name"]),
            model=str(payload["model"]),
            data_parallel=int(payload["data_parallel"]),
            num_iterations=int(payload["num_iterations"]),
            priority=int(payload["priority"]),
            tenant=str(payload["tenant"]),
            submit_time_ms=float(payload["submit_time_ms"]),
            seed=int(payload["seed"]),
            max_retries=int(payload.get("max_retries", 2)),
        )

    def gang_size(self) -> int:
        """Devices the job's requested gang occupies."""
        model = _MODELS[self.model]
        return self.data_parallel * model.pipeline_parallel * model.tensor_parallel


@dataclass
class WorkloadTrace:
    """A generated multi-tenant workload: cluster shape, jobs and faults.

    Attributes:
        num_nodes / gpus_per_node: Cluster shape the trace targets.
        seed: Generator seed (provenance; replay does not re-draw).
        description: Human-readable provenance line.
        jobs: Jobs in submission order.
        faults: Fault events as dictionaries
            (:meth:`~repro.fleet.faults.FaultPlan.to_dicts` format).
    """

    num_nodes: int
    gpus_per_node: int
    seed: int
    description: str = ""
    jobs: list[TraceJob] = field(default_factory=list)
    faults: list[dict[str, Any]] = field(default_factory=list)

    @property
    def num_devices(self) -> int:
        """Total devices of the target cluster."""
        return self.num_nodes * self.gpus_per_node

    @property
    def span_ms(self) -> float:
        """Submission span of the trace (last arrival time)."""
        return self.jobs[-1].submit_time_ms if self.jobs else 0.0

    def topology(self, device_spec: DeviceSpec | None = None) -> ClusterTopology:
        """The cluster topology the trace targets."""
        return ClusterTopology(
            num_nodes=self.num_nodes,
            gpus_per_node=self.gpus_per_node,
            device_spec=device_spec or _TRACE_DEVICE,
        )

    def fault_plan(self) -> FaultPlan:
        """The trace's fault workload as a :class:`FaultPlan`."""
        return FaultPlan.from_dicts(
            self.faults, seed=self.seed, description=f"faults of {self.description}"
        )

    # ------------------------------------------------------------ serialisation

    def to_dict(self) -> dict[str, Any]:
        """Serialise the trace to a JSON-compatible dictionary."""
        return {
            "num_nodes": self.num_nodes,
            "gpus_per_node": self.gpus_per_node,
            "seed": self.seed,
            "description": self.description,
            "jobs": [job.to_dict() for job in self.jobs],
            "faults": [dict(event) for event in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "WorkloadTrace":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            num_nodes=int(payload["num_nodes"]),
            gpus_per_node=int(payload["gpus_per_node"]),
            seed=int(payload["seed"]),
            description=str(payload.get("description", "")),
            jobs=[TraceJob.from_dict(j) for j in payload["jobs"]],
            faults=[dict(e) for e in payload.get("faults", [])],
        )

    def to_json(self) -> str:
        """Serialise the trace to a JSON string."""
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        """Rebuild a trace from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: "str | Path") -> Path:
        """Write the trace as JSON; returns the resolved path."""
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "WorkloadTrace":
        """Read a trace written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


# -------------------------------------------------------------------- generator


def _arrival_times(
    rng: random.Random,
    num_jobs: int,
    base_rate_per_s: float,
    diurnal_period_ms: float,
    diurnal_amplitude: float,
    burst_every_ms: float,
    burst_duration_ms: float,
    burst_factor: float,
) -> list[float]:
    """First ``num_jobs`` arrivals of an inhomogeneous Poisson process.

    Sampled by thinning: candidate arrivals are drawn from a homogeneous
    process at the rate envelope ``base × (1 + amplitude) × burst_factor``
    and accepted with probability ``λ(t) / envelope``, where ``λ(t)`` is the
    diurnal sinusoid multiplied by the burst factor inside periodic burst
    windows.  Thinning is exact for any bounded ``λ(t)``.
    """
    envelope = base_rate_per_s * (1.0 + diurnal_amplitude) * burst_factor
    times: list[float] = []
    t_ms = 0.0
    while len(times) < num_jobs:
        t_ms += rng.expovariate(envelope) * 1000.0
        rate = base_rate_per_s * (
            1.0 + diurnal_amplitude * math.sin(2.0 * math.pi * t_ms / diurnal_period_ms)
        )
        if burst_every_ms > 0 and (t_ms % burst_every_ms) < burst_duration_ms:
            rate *= burst_factor
        if rng.random() * envelope <= rate:
            times.append(t_ms)
    return times


def _weighted_model(rng: random.Random, models: Sequence[WorkloadModel]) -> WorkloadModel:
    """Draw one catalog entry by weight."""
    total = sum(m.weight for m in models)
    pick = rng.random() * total
    for model in models:
        pick -= model.weight
        if pick <= 0.0:
            return model
    return models[-1]


def generate_trace(
    num_jobs: int,
    num_nodes: int,
    gpus_per_node: int = 8,
    seed: int = 0,
    base_rate_per_s: float = 2.0,
    diurnal_period_ms: float = 120_000.0,
    diurnal_amplitude: float = 0.6,
    burst_every_ms: float = 45_000.0,
    burst_duration_ms: float = 5_000.0,
    burst_factor: float = 4.0,
    min_iterations: int = 3,
    max_iterations: int = 10,
    priority_tiers: tuple[int, ...] = (0, 1, 2),
    priority_weights: tuple[float, ...] = (0.6, 0.3, 0.1),
    num_tenants: int = 4,
    storm_rate_per_s: float = 0.05,
    num_rack_outages: int = 1,
    repair_after_ms: float = 20_000.0,
) -> WorkloadTrace:
    """Generate a seeded synthetic multi-tenant workload trace.

    Args:
        num_jobs: Jobs to generate (arrival process runs until reached).
        num_nodes / gpus_per_node: Target cluster shape; jobs whose drawn
            gang would not fit the whole cluster are re-drawn narrower.
        seed: Master seed; equal seeds → bit-identical traces.
        base_rate_per_s: Mean arrival rate before modulation.
        diurnal_period_ms / diurnal_amplitude: Sinusoidal load swing.
        burst_every_ms / burst_duration_ms / burst_factor: Periodic
            submission-spike windows multiplying the arrival rate.
        min_iterations / max_iterations: Per-job iteration count range
            (uniform; bounded by the shared sample pool).
        priority_tiers / priority_weights: Priority mix of the jobs.
        num_tenants: Tenant names to spread jobs across.
        storm_rate_per_s: Device-failure storm rate over the trace span
            (0 disables the storm).
        num_rack_outages: Correlated whole-rack outages over the span.
        repair_after_ms: Repair delay of storm failures and rack outages.

    Returns:
        The generated :class:`WorkloadTrace`.
    """
    if num_jobs < 1:
        raise ValueError(f"num_jobs must be >= 1, got {num_jobs}")
    if not 1 <= min_iterations <= max_iterations <= TRACE_EPOCH_SAMPLES:
        raise ValueError(
            f"need 1 <= min_iterations <= max_iterations <= {TRACE_EPOCH_SAMPLES}, "
            f"got ({min_iterations}, {max_iterations})"
        )
    if len(priority_weights) != len(priority_tiers):
        raise ValueError("priority_weights must match priority_tiers")
    num_devices = num_nodes * gpus_per_node
    rng = random.Random(f"workload-trace:{seed}")
    arrivals = _arrival_times(
        rng,
        num_jobs,
        base_rate_per_s,
        diurnal_period_ms,
        diurnal_amplitude,
        burst_every_ms,
        burst_duration_ms,
        burst_factor,
    )
    fitting = [m for m in MODEL_CATALOG if min(m.dp_choices) * m.pipeline_parallel * m.tensor_parallel <= num_devices]
    if not fitting:
        raise ValueError(
            f"no catalog model fits a {num_devices}-device cluster"
        )
    jobs: list[TraceJob] = []
    for index, submit_ms in enumerate(arrivals):
        model = _weighted_model(rng, fitting)
        widths = [
            dp
            for dp in model.dp_choices
            if dp * model.pipeline_parallel * model.tensor_parallel <= num_devices
        ]
        data_parallel = rng.choice(widths)
        priority = rng.choices(priority_tiers, weights=priority_weights)[0]
        jobs.append(
            TraceJob(
                name=f"{model.key}-{index:04d}",
                model=model.key,
                data_parallel=data_parallel,
                num_iterations=rng.randint(min_iterations, max_iterations),
                priority=priority,
                tenant=f"tenant-{rng.randrange(num_tenants)}",
                submit_time_ms=round(submit_ms, 3),
                seed=rng.randrange(2**31),
            )
        )
    span_ms = max(jobs[-1].submit_time_ms, 1000.0)
    plan = FaultPlan(events=[], description="trace faults")
    if storm_rate_per_s > 0:
        plan = plan.merge(
            failure_storm(
                num_devices,
                seed=rng.randrange(2**31),
                start_ms=0.05 * span_ms,
                duration_ms=0.9 * span_ms,
                rate_per_s=storm_rate_per_s,
                repair_after_ms=repair_after_ms,
            )
        )
    for _ in range(num_rack_outages):
        plan = plan.merge(
            rack_outage(
                node=rng.randrange(num_nodes),
                time_ms=round(rng.uniform(0.2, 0.8) * span_ms, 3),
                repair_after_ms=repair_after_ms,
            )
        )
    description = (
        f"synthetic trace: {num_jobs} jobs over {num_nodes}x{gpus_per_node} "
        f"devices, seed {seed}"
    )
    return WorkloadTrace(
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
        seed=seed,
        description=description,
        jobs=jobs,
        faults=plan.to_dicts(),
    )


# ---------------------------------------------------------------------- replay


def _trace_planner_factory(job: TraceJob, model: WorkloadModel):
    """Planner factory of one trace job (bound per job, not per attempt)."""
    cost_model = workload_cost_model(model.key)

    def factory(spec: JobSpec, data_parallel: int) -> SyntheticTracePlanner:
        return SyntheticTracePlanner(
            cost_model,
            data_parallel_size=data_parallel,
            requested_data_parallel=job.data_parallel,
            base_iteration_ms=model.base_iteration_ms,
            seed=job.seed,
        )

    return factory


def build_jobs(trace: WorkloadTrace) -> list[JobSpec]:
    """Materialise a trace's jobs into submittable :class:`JobSpec` s."""
    specs: list[JobSpec] = []
    for job in trace.jobs:
        model = _MODELS[job.model]
        specs.append(
            JobSpec(
                name=job.name,
                cost_model=workload_cost_model(model.key),
                samples=_sample_pool(model.arch),
                global_batch_tokens=GLOBAL_BATCH_TOKENS,
                parallel=ParallelConfig(
                    data_parallel=job.data_parallel,
                    pipeline_parallel=model.pipeline_parallel,
                    tensor_parallel=model.tensor_parallel,
                ),
                num_iterations=job.num_iterations,
                noise_std=0.0,
                seed=job.seed,
                execute_plans=False,
                max_retries=job.max_retries,
                priority=job.priority,
                submit_time_ms=job.submit_time_ms,
                est_iteration_ms=model.base_iteration_ms,
                planner_factory=_trace_planner_factory(job, model),
            )
        )
    return specs


def build_scheduler(
    trace: WorkloadTrace,
    policy: str = "fifo",
    config: FleetConfig | None = None,
    core: "str | None" = None,
) -> FleetScheduler:
    """A scheduler loaded with the trace's jobs and fault plan, ready to run.

    Args:
        trace: The workload to replay.
        policy: Admission policy name (ignored if ``config`` is given).
        config: Full fleet configuration override.
        core: Scheduler core override (``"bitmap"``/``"object"``); ignored
            if ``config`` is given.
    """
    if config is None:
        config = FleetConfig(policy=policy, core=core)
    scheduler = FleetScheduler(trace.topology(), config)
    for spec in build_jobs(trace):
        scheduler.submit(spec)
    FaultInjector(trace.fault_plan()).apply(scheduler)
    return scheduler


def replay_trace(
    trace: WorkloadTrace,
    policy: str = "fifo",
    config: FleetConfig | None = None,
    core: "str | None" = None,
) -> FleetReport:
    """Replay a trace end-to-end; returns the run's :class:`FleetReport`."""
    return build_scheduler(trace, policy=policy, config=config, core=core).run()
