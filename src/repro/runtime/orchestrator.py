"""End-to-end planner/executor overlap (paper §3 and Fig. 17's conclusion).

The orchestrator runs a planner pool and an executor service against the
same instruction store for a fixed number of iterations and reports how much
of the planning cost was actually exposed to the executor (stall time).
With a look-ahead window larger than one iteration, planning and execution
overlap exactly as the paper describes, and the exposed cost collapses to
the first iteration's planning latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.costmodel.cost_model import CostModel
from repro.data.sampler import MiniBatchSampler
from repro.data.tasks import Sample
from repro.instructions.store import InstructionStore, PlanFailedError
from repro.runtime.executor_service import ExecutorService
from repro.runtime.planner_pool import PlannerPool
from repro.utils.rng import SeedLike


@dataclass
class OrchestratorReport:
    """Summary of an overlapped planning/execution run.

    Attributes:
        iterations: Number of iterations executed.
        total_planning_s: Sum of per-iteration planning times.
        exposed_stall_s: Wall-clock time the executor actually waited for
            plans (the planning cost that was *not* hidden).
        total_simulated_ms: Total simulated execution time.
        mean_planning_s: Mean per-iteration planning time.
        planning_errors: Planning failures that did *not* affect any
            executed iteration, as ``(iteration, message)`` pairs — e.g. a
            worker that died after the last consumed plan, or pool-level
            incidents keyed ``-1`` (a worker that failed to start while its
            peers served the whole run).  A failure of a *consumed*
            iteration still raises from :meth:`TrainingOrchestrator.run`.
    """

    iterations: int
    total_planning_s: float
    exposed_stall_s: float
    total_simulated_ms: float
    mean_planning_s: float
    planning_errors: list[tuple[int, str]] = field(default_factory=list)

    @property
    def overlap_fraction(self) -> float:
        """Fraction of planning time hidden behind execution (1.0 = all)."""
        if self.total_planning_s <= 0:
            return 1.0
        return max(0.0, 1.0 - self.exposed_stall_s / self.total_planning_s)


class TrainingOrchestrator:
    """Wires a planner pool and an executor service together.

    Args:
        planner: The system planner (DynaPipe or baseline).
        cost_model: Cost model of the pipeline (for the executor side).
        samples: Dataset samples.
        global_batch_tokens: Global batch size in tokens.
        num_iterations: Number of iterations to run.
        data_parallel_size: Replicas per iteration.
        planner_workers: Planning workers (processes by default).
        lookahead: Plan-ahead window (in iterations).
        noise_std / seed: Execution noise parameters.
        planner_backend: ``"process"`` (real parallel planning) or
            ``"thread"`` (in-process fallback).
    """

    def __init__(
        self,
        planner,
        cost_model: CostModel,
        samples: Sequence[Sample],
        global_batch_tokens: int,
        num_iterations: int = 4,
        data_parallel_size: int = 1,
        planner_workers: int = 2,
        lookahead: int = 4,
        noise_std: float = 0.05,
        seed: SeedLike = 0,
        planner_backend: str = "process",
    ) -> None:
        if num_iterations < 1:
            raise ValueError(f"num_iterations must be >= 1, got {num_iterations}")
        sampler = MiniBatchSampler(samples, global_batch_tokens, seed=seed)
        minibatches = []
        for minibatch in sampler.epoch(0):
            minibatches.append(minibatch.samples)
            if len(minibatches) >= num_iterations:
                break
        if len(minibatches) < num_iterations:
            raise ValueError(
                f"dataset only yields {len(minibatches)} mini-batches, "
                f"requested {num_iterations}"
            )
        self.store = InstructionStore()
        self.pool = PlannerPool(
            planner=planner,
            minibatches=minibatches,
            store=self.store,
            num_workers=planner_workers,
            lookahead=lookahead,
            backend=planner_backend,
        )
        self.executor = ExecutorService(
            cost_model=cost_model,
            store=self.store,
            data_parallel_size=data_parallel_size,
            noise_std=noise_std,
            seed=seed,
        )
        self.num_iterations = num_iterations

    def run(self) -> OrchestratorReport:
        """Run the overlapped planning/execution loop.

        Raises:
            RuntimeError: If planning of a *consumed* iteration failed.
                Failures surface *during* the loop (the pool pushes failure
                markers, so the executor's fetch raises within its poll
                interval instead of timing out), with the error recorded
                for exactly that iteration chained — never an unrelated
                failure (e.g. a worker spawn incident keyed ``-1``).
                Failures that touched no executed iteration do not fail a
                successful run; they are surfaced in
                :attr:`OrchestratorReport.planning_errors`.
        """
        self.pool.start()
        try:
            for iteration in range(self.num_iterations):
                try:
                    self.executor.run_iteration(iteration)
                except PlanFailedError as failure:
                    # Attribute the failure to *this* iteration's recorded
                    # error only; an unrelated entry (a spawn failure at
                    # key -1, a later iteration's crash) must not be named
                    # as the cause.  The marker's own message, carried by
                    # the PlanFailedError, is the ground truth otherwise.
                    cause = next(
                        (error for it, error in self.pool.errors if it == iteration),
                        failure,
                    )
                    raise RuntimeError(
                        f"planning failed for iteration {iteration}: {cause}"
                    ) from cause
                self.pool.notify_consumed(iteration)
        finally:
            self.pool.stop()
        # The loop consumed every iteration, so errors on consumed indices
        # cannot exist at this point; anything recorded is an unconsumed
        # look-ahead index or a pool-level incident (keyed -1).  Those did
        # not affect the run — report them instead of mislabelling the run
        # as failed (or blaming the fetched iteration for them).
        consumed_failures = [
            (it, error) for it, error in self.pool.errors if 0 <= it < self.num_iterations
        ]
        if consumed_failures:  # pragma: no cover - defensive (loop raises first)
            iteration, error = consumed_failures[0]
            raise RuntimeError(f"planning failed for iteration {iteration}: {error}") from error
        planning_errors = [
            (it, str(error))
            for it, error in self.pool.errors
            if not 0 <= it < self.num_iterations
        ]
        total_planning = sum(record.planning_time_s for record in self.pool.records)
        return OrchestratorReport(
            iterations=self.num_iterations,
            total_planning_s=total_planning,
            exposed_stall_s=self.executor.total_stall_s(),
            total_simulated_ms=self.executor.total_simulated_ms(),
            mean_planning_s=total_planning / max(len(self.pool.records), 1),
            planning_errors=planning_errors,
        )
