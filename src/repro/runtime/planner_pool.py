"""Asynchronous planning ahead of execution.

A :class:`PlannerPool` owns a planner (DynaPipe's or the baseline's), a
sequence of mini-batches, and the shared instruction store.  Worker threads
pull iteration indices from a queue, plan them, and push the serialised
plans to the store keyed by (iteration, replica).  Because planning is pure
Python the threads do not add raw parallel speed-up (the GIL), but they do
exactly what the paper's planners do architecturally: plans for future
iterations are produced while earlier iterations execute, so the executor
never waits as long as planning keeps up on average.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.core.planner import IterationPlan
from repro.data.tasks import Sample
from repro.instructions.store import InstructionStore


class _Planner(Protocol):
    def plan(self, samples: list[Sample], iteration: int = 0) -> IterationPlan:
        ...  # pragma: no cover - protocol


@dataclass
class PlanningRecord:
    """Bookkeeping for one planned iteration.

    Attributes:
        iteration: Iteration index the record describes.
        planning_time_s: Wall-clock planning time of the iteration.
        num_microbatches: Micro-batches in the produced plan.
        pushed_at: ``time.perf_counter()`` timestamp when the plan was pushed.
        dp_cost_evaluations: Cost-model evaluations the DP performed (unique
            window shapes on the vectorized fast path); 0 for planners that
            do not run the DP (baselines).
    """

    iteration: int
    planning_time_s: float
    num_microbatches: int
    pushed_at: float
    dp_cost_evaluations: int = 0


@dataclass
class PlannerPool:
    """Plans iterations ahead of time and pushes them to the store.

    Attributes:
        planner: The system planner used for every iteration.
        minibatches: The samples of each iteration, indexed by iteration.
        store: The shared instruction store plans are pushed to.
        num_workers: Number of planning threads (the paper parallelises
            planning over CPU cores / machines).
        lookahead: Maximum number of iterations planned beyond the last one
            the executor has consumed (bounds plan memory, like the paper's
            prefetch window).
    """

    planner: _Planner
    minibatches: Sequence[Sequence[Sample]]
    store: InstructionStore
    num_workers: int = 2
    lookahead: int = 4
    records: list[PlanningRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {self.lookahead}")
        self._queue: queue.Queue[int | None] = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._consumed = -1
        self._next_to_enqueue = 0
        self._errors: list[tuple[int, Exception]] = []
        self._stop = threading.Event()

    # ------------------------------------------------------------------ worker

    def _worker(self) -> None:
        while not self._stop.is_set():
            try:
                iteration = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            if iteration is None:
                break
            try:
                start = time.perf_counter()
                plan = self.planner.plan(list(self.minibatches[iteration]), iteration=iteration)
                elapsed = time.perf_counter() - start
                for replica_index, replica_plan in enumerate(plan.plans):
                    self.store.push(iteration, replica_index, replica_plan.to_dict())
                solution = getattr(plan, "dp_solution", None)
                with self._lock:
                    self.records.append(
                        PlanningRecord(
                            iteration=iteration,
                            planning_time_s=elapsed,
                            num_microbatches=plan.num_microbatches,
                            pushed_at=time.perf_counter(),
                            dp_cost_evaluations=(
                                solution.cost_evaluations if solution is not None else 0
                            ),
                        )
                    )
            except Exception as error:  # noqa: BLE001 - surfaced via .errors
                with self._lock:
                    self._errors.append((iteration, error))

    # ------------------------------------------------------------------ control

    def start(self) -> None:
        """Start the worker threads and enqueue the initial look-ahead window."""
        self._threads = [
            threading.Thread(target=self._worker, name=f"planner-{i}", daemon=True)
            for i in range(self.num_workers)
        ]
        for thread in self._threads:
            thread.start()
        self._refill()

    def _refill(self) -> None:
        with self._lock:
            limit = min(len(self.minibatches), self._consumed + 1 + self.lookahead)
            while self._next_to_enqueue < limit:
                self._queue.put(self._next_to_enqueue)
                self._next_to_enqueue += 1

    def notify_consumed(self, iteration: int) -> None:
        """Tell the pool the executor finished ``iteration`` (advances the window)."""
        with self._lock:
            self._consumed = max(self._consumed, iteration)
        self.store.evict_iteration(iteration)
        self._refill()

    def stop(self) -> None:
        """Stop the workers (pending queue items are abandoned)."""
        self._stop.set()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)

    # ------------------------------------------------------------------ status

    @property
    def errors(self) -> list[tuple[int, Exception]]:
        """Planning failures, as (iteration, exception) pairs."""
        with self._lock:
            return list(self._errors)

    def planned_iterations(self) -> list[int]:
        """Iterations whose plans have been pushed so far."""
        with self._lock:
            return sorted(record.iteration for record in self.records)
