"""Asynchronous planning ahead of execution, on real CPU cores.

A :class:`PlannerPool` owns a planner (DynaPipe's or the baseline's), a
sequence of mini-batches, and the shared instruction store.  Worker
*processes* (the default backend) pull iteration indices from a task queue,
plan them, and ship the serialised :meth:`IterationPlan.to_dict` payloads
back over a result queue; the parent pushes each replica's plan to the store
keyed by (iteration, replica).  Every worker rebuilds the planner from a
serialised spec — the cost model's profile database travels once, at spawn —
so planning runs outside the parent's GIL and extra workers add *real*
parallel speed-up on multi-core hosts, exactly the paper's "planning
overlaps execution using a handful of CPU cores" claim (Fig. 17).  Rebuilt
planners answer every cost-model query bit-identically, so pooled plans
match serial planning exactly.

A ``backend="thread"`` fallback keeps the old in-process workers for
planners that cannot be serialised; it provides the same overlap
architecture without the parallel speed-up.

Failure handling is fail-fast on both backends: a worker that raises (or a
worker process that dies) pushes a failure marker to the store, so an
executor polling :meth:`~repro.instructions.store.InstructionStore.ready` /
``fetch`` for that iteration observes
:class:`~repro.instructions.store.PlanFailedError` immediately instead of
spinning until its fetch timeout.  :meth:`PlannerPool.stop` drains the task
queue and reports which enqueued iterations were *abandoned* (never planned,
never failed), so a restart knows exactly what still needs planning.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import pickle
import queue
import tempfile
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Protocol, Sequence

from repro.core.planner import DynaPipePlanner, IterationPlan
from repro.data.tasks import Sample
from repro.instructions.store import InstructionStore, PlanFailedError


class _Planner(Protocol):
    def plan(self, samples: list[Sample], iteration: int = 0) -> IterationPlan:
        ...  # pragma: no cover - protocol


@dataclass
class PlanningRecord:
    """Bookkeeping for one planned iteration.

    Attributes:
        iteration: Iteration index the record describes.
        planning_time_s: Wall-clock planning time of the iteration (measured
            inside the worker).
        num_microbatches: Micro-batches in the produced plan.
        pushed_at: ``time.perf_counter()`` timestamp when the plan was pushed
            to the store (parent clock).
        dp_cost_evaluations: Cost-model evaluations the DP performed (unique
            window shapes on the vectorized fast path); 0 for planners that
            do not run the DP (baselines).
        worker: Identifier of the worker that planned the iteration.
    """

    iteration: int
    planning_time_s: float
    num_microbatches: int
    pushed_at: float
    dp_cost_evaluations: int = 0
    worker: str = ""


#: Lazily created directory for spilled planner specs; its finalizer removes
#: anything left over at interpreter shutdown.
_SPEC_SPILL_DIR: tempfile.TemporaryDirectory | None = None
#: One spilled spec file per live planner object, so repeated ``start()``
#: calls and multiple pools sharing one planner re-ship only a path.  Each
#: entry's file is unlinked (via ``weakref.finalize``) when its planner is
#: garbage-collected, so churning through planners — e.g. one per fleet job
#: attempt — does not accumulate profile-sized temp files.
_SPEC_FILES: "weakref.WeakKeyDictionary[Any, str]" = weakref.WeakKeyDictionary()
_SPILL_LOCK = threading.Lock()


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:  # pragma: no cover - already gone / dir being torn down
        pass


def _spill_spec_path(planner: _Planner) -> str:
    """Write ``planner.to_spec()`` to a JSON file once and return its path.

    The profile database dominates the spec, so serialising it per
    ``start()`` (and re-pickling it into every worker under the spawn start
    method) is the pool's main startup cost.  Spilling the spec to disk once
    per planner object means workers receive a short path and ``mmap``-read
    the profile themselves; JSON keeps the payload bit-exact (the spec is
    JSON-safe by construction, see ``costmodel/serialization.py``).  The
    file lives exactly as long as its planner object.

    Raises:
        TypeError: If the spec is not JSON-serialisable (caller falls back
            to pickling the planner whole).
    """
    global _SPEC_SPILL_DIR
    with _SPILL_LOCK:
        path = _SPEC_FILES.get(planner)
        if path is not None and os.path.exists(path):
            return path
        if _SPEC_SPILL_DIR is None:
            _SPEC_SPILL_DIR = tempfile.TemporaryDirectory(prefix="repro-planner-specs-")
        fd, path = tempfile.mkstemp(dir=_SPEC_SPILL_DIR.name, suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(planner.to_spec(), handle)
        except TypeError:
            os.unlink(path)
            raise
        _SPEC_FILES[planner] = path
        weakref.finalize(planner, _unlink_quietly, path)
        return path


def _planner_payload(planner: _Planner) -> dict[str, Any]:
    """Serialise ``planner`` for shipment to worker processes.

    Planners exposing ``to_spec`` (the DynaPipe planner) travel as the
    *path* of a spilled spec file — the profile database is written to disk
    once per planner, not re-pickled per ``start()`` or per worker — and are
    rebuilt via ``from_spec``, which is robust across start methods.
    Anything else is pickled whole.
    """
    if hasattr(planner, "to_spec"):
        try:
            return {"kind": "spec_file", "path": _spill_spec_path(planner)}
        except TypeError:
            pass  # non-JSON-safe spec: fall back to pickling the planner
    return {"kind": "pickle", "blob": pickle.dumps(planner)}


def _rebuild_planner(payload: dict[str, Any]) -> _Planner:
    """Worker-side inverse of :func:`_planner_payload`."""
    if payload["kind"] == "spec_file":
        with open(payload["path"], "r", encoding="utf-8") as handle:
            return DynaPipePlanner.from_spec(json.load(handle))
    if payload["kind"] == "spec":  # in-memory spec (kept for direct callers)
        return DynaPipePlanner.from_spec(payload["spec"])
    return pickle.loads(payload["blob"])


def _plan_one(planner: _Planner, minibatch: Sequence[Sample], iteration: int):
    """Plan one iteration; returns (payload, record fields)."""
    start = time.perf_counter()
    plan = planner.plan(list(minibatch), iteration=iteration)
    elapsed = time.perf_counter() - start
    solution = getattr(plan, "dp_solution", None)
    info = {
        "planning_time_s": elapsed,
        "num_microbatches": plan.num_microbatches,
        "dp_cost_evaluations": solution.cost_evaluations if solution is not None else 0,
    }
    return plan.to_dict(), info


def _process_worker(
    worker_id: str,
    planner_payload: dict[str, Any],
    tasks: "mp.Queue",
    results: "mp.Queue",
) -> None:
    """Worker-process main loop: rebuild the planner, plan until sentinel.

    Tasks arrive as ``(iteration, samples)`` pairs — each mini-batch is
    shipped exactly once, with its task, rather than the whole epoch being
    copied into every worker at spawn.  Every message on ``results`` is a
    tuple whose first element names the event; the parent's collector thread
    keys its bookkeeping off the ``claimed``/``planned``/``failed`` sequence
    so that a worker that dies mid-plan leaves an unresolved claim behind
    for crash detection.
    """
    try:
        planner = _rebuild_planner(planner_payload)
    except Exception as error:  # noqa: BLE001 - surfaced to the parent
        results.put(("spawn_failed", worker_id, f"{type(error).__name__}: {error}"))
        return
    while True:
        task = tasks.get()
        if task is None:
            break
        iteration, samples = task
        results.put(("claimed", worker_id, iteration))
        try:
            payload, info = _plan_one(planner, samples, iteration)
            results.put(("planned", worker_id, iteration, payload, info))
        except Exception as error:  # noqa: BLE001 - surfaced to the parent
            results.put(("failed", worker_id, iteration, f"{type(error).__name__}: {error}"))
    results.put(("exited", worker_id))


@dataclass
class PlannerPool:
    """Plans iterations ahead of time and pushes them to the store.

    Attributes:
        planner: The system planner used for every iteration.
        minibatches: The samples of each iteration, indexed by iteration.
        store: The shared instruction store plans are pushed to.  When
            omitted, the pool creates its own store and additionally retains
            each iteration's full payload for :meth:`wait_payload` /
            :meth:`payload` consumers (the pooled trainer); with an external
            store only the store holds plans, so nothing is double-buffered.
        num_workers: Number of planning workers (the paper parallelises
            planning over CPU cores / machines).
        lookahead: Maximum number of iterations planned beyond the last one
            the executor has consumed (bounds plan memory, like the paper's
            prefetch window).
        backend: ``"process"`` (default; real parallelism, planner rebuilt
            per worker from its serialised spec) or ``"thread"`` (in-process
            fallback sharing the live planner object).
        mp_start_method: ``multiprocessing`` start method for the process
            backend (defaults to the platform default — ``fork`` on Linux,
            ``spawn`` on macOS/Windows, where fork is unsafe).
    """

    planner: _Planner
    minibatches: Sequence[Sequence[Sample]]
    store: InstructionStore | None = None
    num_workers: int = 2
    lookahead: int = 4
    backend: str = "process"
    mp_start_method: str | None = None
    records: list[PlanningRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {self.lookahead}")
        if self.backend not in ("process", "thread"):
            raise ValueError(f"backend must be 'process' or 'thread', got {self.backend!r}")
        self._external_store = self.store is not None
        if self.store is None:
            self.store = InstructionStore()
        self._lock = threading.Lock()
        self._consumed = -1
        self._next_to_enqueue = 0
        self._errors: list[tuple[int, Exception]] = []
        self._payloads: dict[int, dict[str, Any]] = {}
        self._completed: set[int] = set()
        self._failed: set[int] = set()
        self._claims: dict[str, int] = {}
        self._abandoned: list[int] = []
        self._pool_failure: Exception | None = None
        #: Iterations that looked lost (enqueued, unclaimed, not in the task
        #: queue) at the last crash sweep; confirmed lost on the next sweep.
        self._suspect_lost: set[int] = set()
        #: Once sealed (by :meth:`stop`), late worker results are dropped so
        #: the planned/failed/abandoned accounting stays consistent.
        self._sealed = False
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._processes: list[mp.process.BaseProcess] = []
        self._collector: threading.Thread | None = None
        self._exited: set[str] = set()
        self._queue: Any = None  # queue.Queue (thread) or mp.Queue (process)
        self._results: Any = None  # mp.Queue (process backend only)

    # ------------------------------------------------------------------ bookkeeping

    def _record_planned(self, worker: str, iteration: int, payload: dict, info: dict) -> None:
        """Push a finished iteration's plans to the store and record it.

        The store push happens under the pool lock so that :meth:`stop` can
        seal the pool and snapshot the abandoned set atomically — a thread
        worker finishing *after* the seal must not make an "abandoned"
        iteration retroactively planned.
        """
        with self._lock:
            if self._sealed:
                return
            if iteration in self._failed:
                # A crash sweep already failed this iteration (e.g. the
                # worker was killed right after shipping the result); the
                # failure has been surfaced to consumers, so the late result
                # is dropped rather than leaving the iteration both planned
                # and failed.
                return
            for replica_index, replica_payload in enumerate(payload["replicas"]):
                self.store.push(iteration, replica_index, replica_payload)
            self._claims.pop(worker, None)
            self._suspect_lost.discard(iteration)
            if not self._external_store:
                self._payloads[iteration] = payload
            self._completed.add(iteration)
            self.records.append(
                PlanningRecord(
                    iteration=iteration,
                    planning_time_s=info["planning_time_s"],
                    num_microbatches=info["num_microbatches"],
                    pushed_at=time.perf_counter(),
                    dp_cost_evaluations=info["dp_cost_evaluations"],
                    worker=worker,
                )
            )

    def _record_failed(self, worker: str, iteration: int, error: Exception) -> None:
        """Record a planning failure and mark it in the store (fail fast)."""
        with self._lock:
            if self._sealed:
                return
            self._claims.pop(worker, None)
            self._suspect_lost.discard(iteration)
            if iteration in self._completed:
                # The plan already landed; keep the success.
                return
            self._errors.append((iteration, error))
            self._failed.add(iteration)
            self.store.push_failure(iteration, str(error))

    # ------------------------------------------------------------------ thread backend

    def _thread_worker(self, worker_id: str) -> None:
        while not self._stop.is_set():
            try:
                task = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            if task is None:
                break
            iteration, samples = task
            with self._lock:
                self._claims[worker_id] = iteration
            try:
                payload, info = _plan_one(self.planner, samples, iteration)
                self._record_planned(worker_id, iteration, payload, info)
            except Exception as error:  # noqa: BLE001 - surfaced via .errors + store
                self._record_failed(worker_id, iteration, error)

    # ------------------------------------------------------------------ process backend

    def _collect(self) -> None:
        """Parent-side collector: drain worker results, watch for crashes."""
        alive_ids = {p.name for p in self._processes}
        deaths_seen = False
        while True:
            try:
                message = self._results.get(timeout=0.1)
            except queue.Empty:
                dead = [
                    p for p in self._processes
                    if p.name in alive_ids and not p.is_alive()
                ]
                for process in dead:
                    alive_ids.discard(process.name)
                    self._on_worker_death(process.name)
                deaths_seen = deaths_seen or bool(dead)
                if not alive_ids:
                    # Nothing further can arrive; fail anything still queued
                    # (unless we are stopping, where pending work is
                    # *abandoned*, not failed).
                    if not self._stop.is_set():
                        self._fail_unserved("all planner workers exited")
                    return
                if deaths_seen and not self._stop.is_set():
                    # Sweeps continue only while suspects remain; otherwise
                    # the queue would be drained/re-pickled every idle poll
                    # for the pool's remaining lifetime.
                    deaths_seen = self._reconcile_lost_tasks()
                continue
            kind, worker_id = message[0], message[1]
            if kind == "claimed":
                if worker_id in self._exited:
                    # The claim outlived its worker (the death sweep ran
                    # before this buffered message was readable); recording
                    # it now would strand the iteration — no further death
                    # event will fire for this worker and the lost-task
                    # sweep skips claimed iterations.  Fail it directly.
                    self._record_failed(
                        worker_id,
                        message[2],
                        RuntimeError(f"planner worker {worker_id} died while planning"),
                    )
                else:
                    with self._lock:
                        self._claims[worker_id] = message[2]
            elif kind == "planned":
                _, _, iteration, payload, info = message
                self._record_planned(worker_id, iteration, payload, info)
            elif kind == "failed":
                _, _, iteration, text = message
                self._record_failed(worker_id, iteration, RuntimeError(text))
            elif kind == "spawn_failed":
                alive_ids.discard(worker_id)
                self._exited.add(worker_id)
                with self._lock:
                    self._errors.append(
                        (-1, RuntimeError(f"worker {worker_id} failed to start: {message[2]}"))
                    )
                if not alive_ids and not self._stop.is_set():
                    self._fail_unserved("no planner worker started")
                    return
            elif kind == "exited":
                self._exited.add(worker_id)
                alive_ids.discard(worker_id)
                if not alive_ids:
                    return

    def _reconcile_lost_tasks(self) -> bool:
        """Detect tasks a worker dequeued but died before claiming.

        A kill between ``tasks.get()`` and the ``claimed`` message being
        flushed loses the task silently: it is no longer in the queue and no
        claim points at it, so neither the crash handler nor ``stop()``'s
        drain would ever account for it.  After observing worker deaths the
        collector therefore sweeps: an enqueued iteration that is neither
        completed, failed, claimed, nor present in the task queue across two
        consecutive sweeps (the second sweep gives an in-flight ``claimed``
        message time to arrive) is failed like a claimed crash victim.

        Returns whether suspects remain (i.e. another sweep is needed).
        """
        items = []
        while True:
            try:
                items.append(self._queue.get_nowait())
            except queue.Empty:
                break
        for item in items:
            self._queue.put(item)
        present = {item[0] for item in items if item is not None}
        with self._lock:
            claimed = set(self._claims.values())
            unaccounted = {
                iteration
                for iteration in range(self._next_to_enqueue)
                if iteration not in self._completed
                and iteration not in self._failed
                and iteration not in claimed
                and iteration not in present
            }
            lost = self._suspect_lost & unaccounted
            self._suspect_lost = unaccounted - lost
        for iteration in sorted(lost):
            self._record_failed(
                "pool",
                iteration,
                RuntimeError("planner worker died holding this iteration's task"),
            )
        with self._lock:
            return bool(self._suspect_lost)

    def _on_worker_death(self, worker_id: str) -> None:
        """A worker process died without a clean exit message."""
        if worker_id in self._exited or self._stop.is_set():
            return
        self._exited.add(worker_id)
        with self._lock:
            claimed = self._claims.get(worker_id)
        if claimed is not None and claimed not in self._completed:
            self._record_failed(
                worker_id,
                claimed,
                RuntimeError(f"planner worker {worker_id} died while planning"),
            )

    def _fail_unserved(self, reason: str) -> None:
        """Fail every enqueued iteration that no surviving worker will plan."""
        with self._lock:
            self._pool_failure = RuntimeError(reason)
            pending = [
                iteration
                for iteration in range(self._next_to_enqueue)
                if iteration not in self._completed and iteration not in self._failed
            ]
        for iteration in pending:
            self._record_failed("pool", iteration, RuntimeError(reason))

    # ------------------------------------------------------------------ control

    def start(self) -> None:
        """Start the workers and enqueue the initial look-ahead window."""
        if self.backend == "thread":
            self._queue = queue.Queue()
            self._threads = [
                threading.Thread(
                    target=self._thread_worker, args=(f"planner-{i}",),
                    name=f"planner-{i}", daemon=True,
                )
                for i in range(self.num_workers)
            ]
            for thread in self._threads:
                thread.start()
        else:
            # None selects the platform-default context (fork on Linux,
            # spawn on macOS/Windows, where forking is unsafe).
            ctx = mp.get_context(self.mp_start_method)
            self._queue = ctx.Queue()
            self._results = ctx.Queue()
            payload = _planner_payload(self.planner)
            self._processes = [
                ctx.Process(
                    target=_process_worker,
                    args=(f"planner-{i}", payload, self._queue, self._results),
                    name=f"planner-{i}",
                    daemon=True,
                )
                for i in range(self.num_workers)
            ]
            for process in self._processes:
                process.start()
            self._collector = threading.Thread(
                target=self._collect, name="planner-collector", daemon=True
            )
            self._collector.start()
        self._refill()

    def _refill(self) -> None:
        with self._lock:
            if self._stop.is_set():
                return
            failure = self._pool_failure
            limit = min(len(self.minibatches), self._consumed + 1 + self.lookahead)
            fresh = list(range(self._next_to_enqueue, limit))
            self._next_to_enqueue = max(self._next_to_enqueue, limit)
            if failure is None:
                for iteration in fresh:
                    self._queue.put((iteration, list(self.minibatches[iteration])))
        if failure is not None:
            # No worker is left to serve new iterations; keep the fail-fast
            # guarantee by marking them failed instead of enqueueing them
            # onto a queue nobody drains.
            for iteration in fresh:
                self._record_failed("pool", iteration, RuntimeError(str(failure)))

    def notify_consumed(self, iteration: int) -> None:
        """Tell the pool the executor finished ``iteration`` (advances the window)."""
        with self._lock:
            self._consumed = max(self._consumed, iteration)
            self._payloads.pop(iteration, None)
        self.store.evict_iteration(iteration)
        self._refill()

    def _drain_tasks(self) -> list[int]:
        drained: list[int] = []
        if self._queue is None:
            return drained
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                drained.append(item[0])
        return drained

    def stop(self) -> list[int]:
        """Stop the workers and report the abandoned iterations.

        The task queue is drained so no worker picks up new work; each
        worker finishes (or is terminated after a timeout) and the enqueued
        iterations that were neither planned nor failed are returned — and
        exposed as :attr:`abandoned` — so a restart can re-plan exactly
        those instead of double-planning finished ones or silently skipping
        pending ones.
        """
        with self._lock:
            if self._sealed:
                # Already stopped: keep the first snapshot instead of
                # recomputing from a now-empty queue.
                return list(self._abandoned)
        self._stop.set()
        drained = self._drain_tasks()
        if self._queue is not None:
            for _ in range(self.num_workers):
                self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - hung-worker safety net
                process.terminate()
                process.join(timeout=5.0)
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        drained += self._drain_tasks()
        with self._lock:
            # Seal and snapshot atomically: a still-running thread worker
            # finishing after this point has its result dropped, so nothing
            # reported abandoned here can later turn up planned.
            self._sealed = True
            unfinished = [
                it for it in self._claims.values()
                if it not in self._completed and it not in self._failed
            ]
            abandoned = sorted(
                set(drained + unfinished) - self._completed - self._failed
            )
            self._abandoned = abandoned
        return abandoned

    # ------------------------------------------------------------------ status

    @property
    def errors(self) -> list[tuple[int, Exception]]:
        """Planning failures, as (iteration, exception) pairs."""
        with self._lock:
            return list(self._errors)

    @property
    def abandoned(self) -> list[int]:
        """Iterations :meth:`stop` drained before they were ever planned."""
        with self._lock:
            return list(self._abandoned)

    def planned_iterations(self) -> list[int]:
        """Iterations whose plans have been pushed so far."""
        with self._lock:
            return sorted(record.iteration for record in self.records)

    def failed_iterations(self) -> list[int]:
        """Iterations whose planning failed."""
        with self._lock:
            return sorted(self._failed)

    def payload(self, iteration: int) -> dict[str, Any] | None:
        """The :meth:`IterationPlan.to_dict` payload of ``iteration``, if planned.

        Payloads are retained only when the pool owns its store (no ``store``
        argument was given); with an external store, fetch plans from it.
        """
        with self._lock:
            return self._payloads.get(iteration)

    def wait_payload(self, iteration: int, timeout: float = 120.0) -> dict[str, Any]:
        """Block until ``iteration`` is planned and return its payload.

        Raises:
            RuntimeError: If the pool was built with an external store
                (payloads are not retained there; poll the store instead).
            PlanFailedError: If planning of the iteration failed.
            TimeoutError: If the payload does not appear within ``timeout``.
        """
        if self._external_store:
            raise RuntimeError(
                "wait_payload() requires a pool-owned store (construct the "
                "PlannerPool without `store`); consumers of an external store "
                "should poll it directly"
            )
        deadline = time.perf_counter() + timeout
        while True:
            with self._lock:
                payload = self._payloads.get(iteration)
                failure = next(
                    (error for it, error in self._errors if it == iteration), None
                )
                if failure is None:
                    failure = self._pool_failure
            if payload is not None:
                return payload
            if failure is not None:
                raise PlanFailedError(
                    f"planning failed for iteration {iteration}: {failure}",
                    iteration=iteration,
                ) from failure
            if time.perf_counter() > deadline:
                raise TimeoutError(
                    f"no plan for iteration {iteration} after {timeout:.1f}s"
                )
            time.sleep(0.002)
