"""Asynchronous planning ahead of execution, on real CPU cores.

A :class:`PlannerPool` is the reproduction's model of the paper's CPU-side
*planning cluster*: worker *processes* (the default backend) pull planning
tasks from a shared task queue, plan them, and ship the serialised
:meth:`IterationPlan.to_dict` payloads back over a result queue; the parent
pushes each replica's plan to the shared
:class:`~repro.instructions.store.InstructionStore` keyed by
``(job, iteration, replica)``.  Planners travel as serialised specs — the
cost model's profile database is spilled to disk once per planner — and
every worker rebuilds them bit-identically, so pooled plans match serial
planning exactly while running outside the parent's GIL (the paper's
"planning overlaps execution using a handful of CPU cores" claim, Fig. 17).

The pool serves *dynamic task streams*: besides the legacy construction-time
``planner`` + ``minibatches`` binding (one anonymous job, used by the
single-job runtime), :meth:`PlannerPool.submit_job` registers a named job's
mini-batches at any time and :meth:`PlannerPool.retire_job` cancels exactly
that job's queued tasks — one pool (and one set of spawned workers) can
therefore serve every job of a fleet, with per-job look-ahead windows and
per-job planned/failed/abandoned accounting.  Workers cache rebuilt
planners per job, so a stream's planner is rebuilt once per worker, not
once per task.

A ``backend="thread"`` fallback keeps in-process workers for planners that
cannot be serialised; it provides the same overlap architecture without the
parallel speed-up.

Failure handling is fail-fast on both backends: a worker that raises (or a
worker process that dies) pushes a failure marker to the store — scoped to
the failing job, so co-tenant jobs sharing the pool never observe it — and
an executor polling :meth:`~repro.instructions.store.InstructionStore.ready`
/ ``fetch`` for that iteration observes
:class:`~repro.instructions.store.PlanFailedError` immediately instead of
spinning until its fetch timeout.  :meth:`PlannerPool.stop` and
:meth:`PlannerPool.retire_job` report which enqueued iterations were
*abandoned* (never planned, never failed), so a restart knows exactly what
still needs planning.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing as mp
import os
import pickle
import queue
import tempfile
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Protocol, Sequence

from repro.core.planner import DynaPipePlanner, IterationPlan
from repro.data.tasks import Sample
from repro.instructions.store import DEFAULT_JOB, InstructionStore, PlanFailedError
from repro.obs import state as _obs_state
from repro.obs.events import publish as _publish
from repro.obs.registry import REGISTRY, aggregate_snapshots
from repro.obs.spans import RECORDER as _RECORDER
from repro.obs.spans import span as _span


class _Planner(Protocol):
    def plan(self, samples: list[Sample], iteration: int = 0) -> IterationPlan:
        ...  # pragma: no cover - protocol


@dataclass
class PlanningRecord:
    """Bookkeeping for one planned iteration.

    Attributes:
        iteration: Iteration index the record describes (absolute — a
            resumed job stream's first record carries its ``start``).
        planning_time_s: Wall-clock planning time of the iteration (measured
            inside the worker).
        num_microbatches: Micro-batches in the produced plan.
        pushed_at: ``time.perf_counter()`` timestamp when the plan was pushed
            to the store (parent clock).
        dp_cost_evaluations: Cost-model evaluations the DP performed (unique
            window shapes on the vectorized fast path); 0 for planners that
            do not run the DP (baselines).
        worker: Identifier of the worker that planned the iteration.
        job: Job stream the iteration belongs to (:data:`DEFAULT_JOB` for
            the legacy construction-time stream).
    """

    iteration: int
    planning_time_s: float
    num_microbatches: int
    pushed_at: float
    dp_cost_evaluations: int = 0
    worker: str = ""
    job: str = DEFAULT_JOB


#: Lazily created directory for spilled planner specs; its finalizer removes
#: anything left over at interpreter shutdown.
_SPEC_SPILL_DIR: tempfile.TemporaryDirectory | None = None
#: One spilled spec file per live planner object, so repeated ``start()``
#: calls and multiple pools sharing one planner re-ship only a path.  Each
#: entry's file is unlinked (via ``weakref.finalize``) when its planner is
#: garbage-collected, so churning through planners — e.g. one per fleet job
#: attempt — does not accumulate profile-sized temp files.
_SPEC_FILES: "weakref.WeakKeyDictionary[Any, str]" = weakref.WeakKeyDictionary()
_SPILL_LOCK = threading.Lock()

#: Rebuilt planners a worker keeps alive at once (LRU).  Profile databases
#: dominate planner memory, so the cache is small; with job-affine task
#: pickup patterns a handful of entries already gives one-rebuild-per-job.
_WORKER_PLANNER_CACHE = 4

#: Registry-backed pool counters (``planner_pool.*`` in metric snapshots).
_POOL_STATS = REGISTRY.counter_dict(
    "planner_pool", ("tasks_enqueued", "plans_recorded", "failures_recorded")
)


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:  # pragma: no cover - already gone / dir being torn down
        pass


def _spill_spec_path(planner: _Planner) -> str:
    """Write ``planner.to_spec()`` to a JSON file once and return its path.

    The profile database dominates the spec, so serialising it per
    ``start()`` (and re-pickling it into every worker under the spawn start
    method) is the pool's main startup cost.  Spilling the spec to disk once
    per planner object means workers receive a short path and ``mmap``-read
    the profile themselves; JSON keeps the payload bit-exact (the spec is
    JSON-safe by construction, see ``costmodel/serialization.py``).  The
    file lives exactly as long as its planner object.

    Raises:
        TypeError: If the spec is not JSON-serialisable (caller falls back
            to pickling the planner whole).
    """
    global _SPEC_SPILL_DIR
    with _SPILL_LOCK:
        path = _SPEC_FILES.get(planner)
        if path is not None and os.path.exists(path):
            return path
        if _SPEC_SPILL_DIR is None:
            _SPEC_SPILL_DIR = tempfile.TemporaryDirectory(prefix="repro-planner-specs-")
        fd, path = tempfile.mkstemp(dir=_SPEC_SPILL_DIR.name, suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(planner.to_spec(), handle)
        except TypeError:
            os.unlink(path)
            raise
        _SPEC_FILES[planner] = path
        weakref.finalize(planner, _unlink_quietly, path)
        return path


def _planner_payload(planner: _Planner) -> dict[str, Any]:
    """Serialise ``planner`` for shipment to worker processes.

    Planners exposing ``to_spec`` (the DynaPipe planner) travel as the
    *path* of a spilled spec file — the profile database is written to disk
    once per planner, not re-pickled per ``start()`` or per task — and are
    rebuilt via ``from_spec``, which is robust across start methods.
    Anything else is pickled whole.
    """
    if hasattr(planner, "to_spec"):
        try:
            return {"kind": "spec_file", "path": _spill_spec_path(planner)}
        except TypeError:
            pass  # non-JSON-safe spec: fall back to pickling the planner
    return {"kind": "pickle", "blob": pickle.dumps(planner)}


def _rebuild_planner(payload: dict[str, Any]) -> _Planner:
    """Worker-side inverse of :func:`_planner_payload`."""
    if payload["kind"] == "spec_file":
        with open(payload["path"], "r", encoding="utf-8") as handle:
            return DynaPipePlanner.from_spec(json.load(handle))
    if payload["kind"] == "spec":  # in-memory spec (kept for direct callers)
        return DynaPipePlanner.from_spec(payload["spec"])
    return pickle.loads(payload["blob"])


def _cached_planner(cache: "OrderedDict[str, _Planner]", payload: dict[str, Any]) -> _Planner:
    """Rebuild ``payload``'s planner, memoised per worker by its cache key.

    Tasks of one job stream all carry the same ``cache_key``, so a worker
    rebuilds each job's planner once (LRU-bounded) instead of per task —
    the fleet-wide pool's analogue of the old one-planner-per-worker spawn.
    """
    key = payload.get("cache_key")
    if key is None:
        return _rebuild_planner(payload)
    planner = cache.get(key)
    if planner is None:
        planner = _rebuild_planner(payload)
        cache[key] = planner
        if len(cache) > _WORKER_PLANNER_CACHE:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return planner


def _plan_one(
    planner: _Planner,
    minibatch: Sequence[Sample],
    iteration: int,
    job: str = DEFAULT_JOB,
):
    """Plan one iteration; returns (payload, record fields)."""
    with _span("plan_task", job=job, iteration=iteration):
        start = time.perf_counter()
        plan = planner.plan(list(minibatch), iteration=iteration)
        elapsed = time.perf_counter() - start
    solution = getattr(plan, "dp_solution", None)
    info = {
        "planning_time_s": elapsed,
        "num_microbatches": plan.num_microbatches,
        "dp_cost_evaluations": solution.cost_evaluations if solution is not None else 0,
    }
    return plan.to_dict(), info


def _worker_telemetry(worker_id: str) -> dict[str, Any]:
    """Snapshot a worker process's telemetry for shipment to the parent.

    Metric snapshots ship unconditionally — counters are always on, and the
    parent's aggregated engine stats must see worker-side planning whether or
    not spans are enabled.  Spans ship only when telemetry is enabled; the
    worker recorder is *drained*, so each message carries only spans finished
    since the previous one.
    """
    telemetry: dict[str, Any] = {"metrics": REGISTRY.snapshot()}
    if _obs_state.enabled():
        telemetry["spans"] = _RECORDER.drain_dicts(origin=worker_id)
    return telemetry


def _process_worker(
    worker_id: str,
    tasks: "mp.Queue",
    results: "mp.Queue",
) -> None:
    """Worker-process main loop: plan tasks until sentinel.

    Tasks arrive as ``(job, iteration, samples, planner_payload)`` tuples —
    each mini-batch is shipped exactly once, with its task, and the planner
    payload is a short reference (spec-file path + cache key) rebuilt
    lazily and memoised per worker.  Every message on ``results`` is a
    tuple whose first element names the event; the parent's collector
    thread keys its bookkeeping off the ``claimed``/``planned``/``failed``
    sequence so that a worker that dies mid-plan leaves an unresolved claim
    behind for crash detection.
    """
    planners: "OrderedDict[str, _Planner]" = OrderedDict()
    while True:
        task = tasks.get()
        if task is None:
            break
        job, iteration, samples, payload = task
        results.put(("claimed", worker_id, job, iteration))
        try:
            planner = _cached_planner(planners, payload)
            plan_payload, info = _plan_one(planner, samples, iteration, job=job)
            info["telemetry"] = _worker_telemetry(worker_id)
            results.put(("planned", worker_id, job, iteration, plan_payload, info))
        except Exception as error:  # noqa: BLE001 - surfaced to the parent
            results.put(
                (
                    "failed",
                    worker_id,
                    job,
                    iteration,
                    f"{type(error).__name__}: {error}",
                    _worker_telemetry(worker_id),
                )
            )
    results.put(("exited", worker_id, _worker_telemetry(worker_id)))


@dataclass
class _JobStream:
    """Parent-side state of one job's task stream on the pool.

    The legacy construction-time ``minibatches`` binding is stream
    :data:`~repro.instructions.store.DEFAULT_JOB`; fleet jobs register one
    stream per attempt via :meth:`PlannerPool.submit_job`.  All iteration
    indices are *absolute*: ``start`` names the first mini-batch's
    iteration, so a resumed job's plans land in the store under the same
    keys an uninterrupted run would have used.
    """

    name: str
    planner: _Planner | None
    minibatches: Sequence[Sequence[Sample]]
    start: int
    lookahead: int
    retain_payloads: bool
    #: Per-task planner reference: the live planner (thread backend) or a
    #: payload dict with a stream-unique ``cache_key`` (process backend).
    task_ref: Any = None
    consumed: int = field(init=False)
    next_to_enqueue: int = field(init=False)
    num_minibatches: int = field(init=False)
    completed: set[int] = field(default_factory=set)
    failed: set[int] = field(default_factory=set)
    errors: list[tuple[int, Exception]] = field(default_factory=list)
    payloads: dict[int, dict] = field(default_factory=dict)
    abandoned: list[int] = field(default_factory=list)
    retired: bool = False

    def __post_init__(self) -> None:
        self.consumed = self.start - 1
        self.next_to_enqueue = self.start
        self.num_minibatches = len(self.minibatches)

    @property
    def end(self) -> int:
        """One past the stream's last iteration index."""
        return self.start + self.num_minibatches

    def unserved(self) -> list[int]:
        """Enqueued iterations that were neither planned nor failed."""
        return sorted(
            iteration
            for iteration in range(self.start, self.next_to_enqueue)
            if iteration not in self.completed and iteration not in self.failed
        )


@dataclass
class PlannerPool:
    """Plans iterations ahead of time and pushes them to the store.

    Two usage modes share one worker group:

    * **Single job** (legacy) — construct with ``planner`` + ``minibatches``;
      the pool plans that one stream, exactly as before.
    * **Planning cluster** (fleet) — construct with neither, then
      :meth:`submit_job` / :meth:`retire_job` register and cancel named job
      streams dynamically while the workers keep running.  Worker spawn is
      paid once for the whole fleet, not once per job attempt.

    Attributes:
        planner: The legacy stream's planner (``None`` in fleet mode).
        minibatches: The legacy stream's samples, indexed by position.
        store: The shared instruction store plans are pushed to, keyed
            ``(job, iteration, replica)``.  When omitted, the pool creates
            its own store and additionally retains the legacy stream's full
            payloads for :meth:`wait_payload` / :meth:`payload` consumers
            (the pooled trainer); with an external store the legacy stream
            is not double-buffered.  Streams registered via
            :meth:`submit_job` always retain payloads until consumed or
            retired (their consumers step through :meth:`wait_payload`).
        num_workers: Number of planning workers (the paper parallelises
            planning over CPU cores / machines).
        lookahead: Default per-stream look-ahead: iterations planned beyond
            the last one the stream's executor has consumed (bounds plan
            memory, like the paper's prefetch window).
        backend: ``"process"`` (default; real parallelism, planners rebuilt
            in workers from serialised specs) or ``"thread"`` (in-process
            fallback sharing the live planner objects).
        mp_start_method: ``multiprocessing`` start method for the process
            backend (defaults to the platform default — ``fork`` on Linux,
            ``spawn`` on macOS/Windows, where fork is unsafe).
        start_iteration: Absolute iteration index of ``minibatches[0]``
            (legacy stream); plans are keyed by absolute iteration, so a
            resumed session passes its resume boundary here.
    """

    planner: _Planner | None = None
    minibatches: Sequence[Sequence[Sample]] = ()
    store: InstructionStore | None = None
    num_workers: int = 2
    lookahead: int = 4
    backend: str = "process"
    mp_start_method: str | None = None
    start_iteration: int = 0
    records: list[PlanningRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {self.lookahead}")
        if self.backend not in ("process", "thread"):
            raise ValueError(f"backend must be 'process' or 'thread', got {self.backend!r}")
        if self.start_iteration < 0:
            raise ValueError(f"start_iteration must be >= 0, got {self.start_iteration}")
        if self.planner is None and len(self.minibatches) > 0:
            raise ValueError("minibatches given without a planner")
        self._external_store = self.store is not None
        if self.store is None:
            self.store = InstructionStore()
        self._lock = threading.Lock()
        self._streams: dict[str, _JobStream] = {}
        if self.planner is not None:
            self._streams[DEFAULT_JOB] = _JobStream(
                name=DEFAULT_JOB,
                planner=self.planner,
                minibatches=self.minibatches,
                start=self.start_iteration,
                lookahead=self.lookahead,
                retain_payloads=not self._external_store,
            )
        self._ref_seq = itertools.count()
        self._claims: dict[str, tuple[str, int]] = {}
        self._pool_errors: list[Exception] = []
        self._pool_failure: Exception | None = None
        #: Tasks that looked lost (enqueued, unclaimed, not in the task
        #: queue) at the last crash sweep; confirmed lost on the next sweep.
        self._suspect_lost: set[tuple[str, int]] = set()
        #: Once sealed (by :meth:`stop`), late worker results are dropped so
        #: the planned/failed/abandoned accounting stays consistent.
        self._sealed = False
        self._started = False
        #: Cooperative kill set of the thread backend: a worker whose name
        #: lands here exits at the top of its next loop (chaos harness).
        self._killed: set[str] = set()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._processes: list[mp.process.BaseProcess] = []
        self._collector: threading.Thread | None = None
        self._exited: set[str] = set()
        #: Latest cumulative metrics snapshot shipped by each worker process
        #: (counters are monotonic between resets, so latest-per-worker sums
        #: to an exact fleet-wide view).
        self._worker_metrics: dict[str, dict[str, Any]] = {}
        self._queue: Any = None  # queue.Queue (thread) or mp.Queue (process)
        self._results: Any = None  # mp.Queue (process backend only)

    # ------------------------------------------------------------------ job streams

    def _make_task_ref(self, stream: _JobStream) -> Any:
        """Build the per-task planner reference of one stream.

        Serialising a planner spills the whole profile database (spec file)
        or pickles the planner, so this is never called under the pool lock
        — the collector and co-tenant consumers must not stall on one
        stream's registration.
        """
        if self.backend == "thread":
            return stream.planner
        payload = _planner_payload(stream.planner)
        payload["cache_key"] = f"{stream.name}#{next(self._ref_seq)}"
        return payload

    def submit_job(
        self,
        job: str,
        planner: _Planner,
        minibatches: Sequence[Sequence[Sample]],
        start: int = 0,
        lookahead: int | None = None,
    ) -> None:
        """Register a named job stream on the (possibly running) pool.

        Args:
            job: Stream name; becomes the store namespace of the stream's
                plans and failure markers.  Must be unique for the pool's
                lifetime — a retried fleet attempt submits a fresh name so
                a dead attempt's late results can never pollute it.
            planner: Planner for every iteration of the stream (each
                attempt's planner captures its gang shape).
            minibatches: The stream's mini-batches, in iteration order.
            start: Absolute iteration index of ``minibatches[0]`` (the
                job's checkpoint boundary on a resumed attempt).
            lookahead: Per-stream look-ahead window; defaults to the pool's.

        Raises:
            ValueError: On a reserved/duplicate name or invalid window.
        """
        if not job:
            raise ValueError("job name must be non-empty (the anonymous stream is reserved)")
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        window = self.lookahead if lookahead is None else lookahead
        if window < 1:
            raise ValueError(f"lookahead must be >= 1, got {window}")
        stream = _JobStream(
            name=job,
            planner=planner,
            minibatches=minibatches,
            start=start,
            lookahead=window,
            retain_payloads=True,
        )
        with self._lock:
            if self._sealed:
                raise RuntimeError("cannot submit jobs to a stopped pool")
            if job in self._streams:
                raise ValueError(f"duplicate job stream {job!r}")
            self._streams[job] = stream  # reserves the name
            started = self._started
        if started:
            # Planner serialisation (profile-DB spill / pickling) happens
            # outside the lock so one registration never stalls the
            # collector or co-tenant consumers.
            ref = self._make_task_ref(stream)
            with self._lock:
                stream.task_ref = ref
            self._refill(stream)

    def retire_job(self, job: str) -> list[int]:
        """Cancel a job stream: drain *its* queued tasks, evict its state.

        Only the retired job's tasks leave the queue — co-tenant streams
        keep planning undisturbed (the preemption contract of the fleet's
        shared pool).  A worker already planning one of the job's
        iterations finishes, but its late result is dropped, and the job's
        store namespace (plans *and* failure markers) is evicted, so
        nothing of the attempt survives into a successor stream.

        Returns the abandoned iterations (enqueued, never planned, never
        failed), like :meth:`stop` does for the whole pool.
        """
        with self._lock:
            stream = self._streams.get(job)
            if stream is None:
                raise KeyError(f"unknown job stream {job!r}")
            if stream.retired:
                return list(stream.abandoned)
        if self._queue is not None:
            requeue = []
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is None or item[0] != job:
                    requeue.append(item)
            for item in requeue:
                self._queue.put(item)
        with self._lock:
            stream.abandoned = stream.unserved()
            stream.retired = True
            stream.payloads.clear()
            stream.minibatches = ()
            # The stream stays registered as a tombstone (late results must
            # keep being dropped), but its heavy references — the planner
            # with its profile database, and the task ref pinning a spilled
            # spec file (or a pickle blob) — are released now, so a fleet
            # churning through attempts does not grow the parent's memory
            # by one planner per retired stream.
            stream.planner = None
            stream.task_ref = None
            self._suspect_lost = {
                key for key in self._suspect_lost if key[0] != job
            }
        self.store.evict_job(job)
        with self._lock:
            return list(stream.abandoned)

    def job_names(self, include_retired: bool = False) -> list[str]:
        """Names of registered streams (the anonymous stream excluded)."""
        with self._lock:
            return sorted(
                name
                for name, stream in self._streams.items()
                if name != DEFAULT_JOB and (include_retired or not stream.retired)
            )

    def _stream(self, job: str) -> _JobStream:
        stream = self._streams.get(job)
        if stream is None:
            raise KeyError(f"unknown job stream {job!r}")
        return stream

    # ------------------------------------------------------------------ bookkeeping

    def _record_planned(
        self, worker: str, job: str, iteration: int, payload: dict, info: dict
    ) -> None:
        """Push a finished iteration's plans to the store and record it.

        The store push happens under the pool lock so that :meth:`stop` can
        seal the pool and snapshot the abandoned sets atomically — a thread
        worker finishing *after* the seal must not make an "abandoned"
        iteration retroactively planned.  Results for retired streams are
        dropped for the same reason: the attempt they belong to is gone.
        """
        with self._lock:
            self._claims.pop(worker, None)
            if self._sealed:
                return
            stream = self._streams.get(job)
            if stream is None or stream.retired:
                return
            if iteration in stream.failed:
                # A crash sweep already failed this iteration (e.g. the
                # worker was killed right after shipping the result); the
                # failure has been surfaced to consumers, so the late result
                # is dropped rather than leaving the iteration both planned
                # and failed.
                return
            self._suspect_lost.discard((job, iteration))
            for replica_index, replica_payload in enumerate(payload["replicas"]):
                self.store.push(iteration, replica_index, replica_payload, job=job)
            if stream.retain_payloads:
                stream.payloads[iteration] = payload
            stream.completed.add(iteration)
            self.records.append(
                PlanningRecord(
                    iteration=iteration,
                    planning_time_s=info["planning_time_s"],
                    num_microbatches=info["num_microbatches"],
                    pushed_at=time.perf_counter(),
                    dp_cost_evaluations=info["dp_cost_evaluations"],
                    worker=worker,
                    job=job,
                )
            )
            _POOL_STATS["plans_recorded"] += 1
            REGISTRY.histogram("planner_pool.planning_time_s").observe(
                info["planning_time_s"]
            )
        _publish("planner_task_planned", job=job, iteration=iteration, worker=worker)

    def _record_failed(self, worker: str, job: str, iteration: int, error: Exception) -> None:
        """Record a planning failure and mark it in the store (fail fast)."""
        with self._lock:
            self._claims.pop(worker, None)
            if self._sealed:
                return
            stream = self._streams.get(job)
            if stream is None or stream.retired:
                return
            self._suspect_lost.discard((job, iteration))
            if iteration in stream.completed:
                # The plan already landed; keep the success.
                return
            if iteration in stream.failed:
                return
            stream.errors.append((iteration, error))
            stream.failed.add(iteration)
            self.store.push_failure(iteration, str(error), job=job)
            _POOL_STATS["failures_recorded"] += 1
        _publish(
            "planner_task_failed", job=job, iteration=iteration, error=str(error)
        )

    def _absorb_worker_telemetry(
        self, worker_id: str, telemetry: dict[str, Any] | None
    ) -> None:
        """Fold one worker message's telemetry into the parent's stores.

        Metric snapshots are cumulative per worker, so the latest replaces
        its predecessor (summing latest snapshots across workers is exact);
        shipped spans are appended to the parent recorder under the worker's
        origin label, with span ids re-based to avoid collisions.
        """
        if not telemetry:
            return
        metrics = telemetry.get("metrics")
        if metrics:
            with self._lock:
                self._worker_metrics[worker_id] = metrics
        spans = telemetry.get("spans")
        if spans:
            _RECORDER.extend_dicts(spans, origin=worker_id)

    # ------------------------------------------------------------------ thread backend

    def _thread_worker(self, worker_id: str) -> None:
        while not self._stop.is_set():
            if worker_id in self._killed:
                break
            try:
                task = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            if task is None:
                break
            job, iteration, samples, planner = task
            with self._lock:
                self._claims[worker_id] = (job, iteration)
            try:
                payload, info = _plan_one(planner, samples, iteration, job=job)
                self._record_planned(worker_id, job, iteration, payload, info)
            except Exception as error:  # noqa: BLE001 - surfaced via .errors + store
                self._record_failed(worker_id, job, iteration, error)

    # ------------------------------------------------------------------ process backend

    def _collect(self) -> None:
        """Parent-side collector: drain worker results, watch for crashes."""
        alive_ids = {p.name for p in self._processes}
        deaths_seen = False
        while True:
            try:
                message = self._results.get(timeout=0.1)
            except queue.Empty:
                dead = [
                    p for p in self._processes
                    if p.name in alive_ids and not p.is_alive()
                ]
                for process in dead:
                    alive_ids.discard(process.name)
                    self._on_worker_death(process.name)
                deaths_seen = deaths_seen or bool(dead)
                if not alive_ids:
                    # Nothing further can arrive; fail anything still queued
                    # (unless we are stopping, where pending work is
                    # *abandoned*, not failed).
                    if not self._stop.is_set():
                        self._fail_unserved("all planner workers exited")
                    return
                if deaths_seen and not self._stop.is_set():
                    # Sweeps continue only while suspects remain; otherwise
                    # the queue would be drained/re-pickled every idle poll
                    # for the pool's remaining lifetime.
                    deaths_seen = self._reconcile_lost_tasks()
                continue
            kind, worker_id = message[0], message[1]
            if kind == "claimed":
                _, _, job, iteration = message
                if worker_id in self._exited:
                    # The claim outlived its worker (the death sweep ran
                    # before this buffered message was readable); recording
                    # it now would strand the iteration — no further death
                    # event will fire for this worker and the lost-task
                    # sweep skips claimed iterations.  Fail it directly.
                    self._record_failed(
                        worker_id,
                        job,
                        iteration,
                        RuntimeError(f"planner worker {worker_id} died while planning"),
                    )
                else:
                    with self._lock:
                        self._claims[worker_id] = (job, iteration)
            elif kind == "planned":
                _, _, job, iteration, payload, info = message
                self._absorb_worker_telemetry(worker_id, info.pop("telemetry", None))
                self._record_planned(worker_id, job, iteration, payload, info)
            elif kind == "failed":
                _, _, job, iteration, text, telemetry = message
                self._absorb_worker_telemetry(worker_id, telemetry)
                self._record_failed(worker_id, job, iteration, RuntimeError(text))
            elif kind == "exited":
                self._absorb_worker_telemetry(worker_id, message[2])
                self._exited.add(worker_id)
                alive_ids.discard(worker_id)
                if not alive_ids:
                    return

    def _reconcile_lost_tasks(self) -> bool:
        """Detect tasks a worker dequeued but died before claiming.

        A kill between ``tasks.get()`` and the ``claimed`` message being
        flushed loses the task silently: it is no longer in the queue and no
        claim points at it, so neither the crash handler nor ``stop()``'s
        drain would ever account for it.  After observing worker deaths the
        collector therefore sweeps: an enqueued task that is neither
        completed, failed, claimed, nor present in the task queue across two
        consecutive sweeps (the second sweep gives an in-flight ``claimed``
        message time to arrive) is failed like a claimed crash victim.

        Returns whether suspects remain (i.e. another sweep is needed).
        """
        items = []
        while True:
            try:
                items.append(self._queue.get_nowait())
            except queue.Empty:
                break
        for item in items:
            self._queue.put(item)
        present = {(item[0], item[1]) for item in items if item is not None}
        with self._lock:
            claimed = set(self._claims.values())
            unaccounted = set()
            for stream in self._streams.values():
                if stream.retired:
                    continue
                for iteration in range(stream.start, stream.next_to_enqueue):
                    key = (stream.name, iteration)
                    if (
                        iteration not in stream.completed
                        and iteration not in stream.failed
                        and key not in claimed
                        and key not in present
                    ):
                        unaccounted.add(key)
            lost = self._suspect_lost & unaccounted
            self._suspect_lost = unaccounted - lost
        for job, iteration in sorted(lost):
            self._record_failed(
                "pool",
                job,
                iteration,
                RuntimeError("planner worker died holding this iteration's task"),
            )
        with self._lock:
            return bool(self._suspect_lost)

    def _on_worker_death(self, worker_id: str) -> None:
        """A worker process died without a clean exit message."""
        if worker_id in self._exited or self._stop.is_set():
            return
        self._exited.add(worker_id)
        with self._lock:
            claimed = self._claims.get(worker_id)
            self._pool_errors.append(
                RuntimeError(f"planner worker {worker_id} died unexpectedly")
            )
        if claimed is not None:
            job, iteration = claimed
            self._record_failed(
                worker_id,
                job,
                iteration,
                RuntimeError(f"planner worker {worker_id} died while planning"),
            )

    def _fail_unserved(self, reason: str) -> None:
        """Fail every enqueued iteration that no surviving worker will plan."""
        with self._lock:
            self._pool_failure = RuntimeError(reason)
            pending = [
                (stream.name, iteration)
                for stream in self._streams.values()
                if not stream.retired
                for iteration in stream.unserved()
            ]
        for job, iteration in pending:
            self._record_failed("pool", job, iteration, RuntimeError(reason))

    # ------------------------------------------------------------------ control

    def start(self) -> None:
        """Start the workers and enqueue every stream's initial window."""
        if self.backend == "thread":
            self._queue = queue.Queue()
            self._threads = [
                threading.Thread(
                    target=self._thread_worker, args=(f"planner-{i}",),
                    name=f"planner-{i}", daemon=True,
                )
                for i in range(self.num_workers)
            ]
            for thread in self._threads:
                thread.start()
        else:
            # None selects the platform-default context (fork on Linux,
            # spawn on macOS/Windows, where forking is unsafe).
            ctx = mp.get_context(self.mp_start_method)
            self._queue = ctx.Queue()
            self._results = ctx.Queue()
            self._processes = [
                ctx.Process(
                    target=_process_worker,
                    args=(f"planner-{i}", self._queue, self._results),
                    name=f"planner-{i}",
                    daemon=True,
                )
                for i in range(self.num_workers)
            ]
            for process in self._processes:
                process.start()
            self._collector = threading.Thread(
                target=self._collect, name="planner-collector", daemon=True
            )
            self._collector.start()
        with self._lock:
            self._started = True
            streams = [s for s in self._streams.values() if not s.retired]
        for stream in streams:
            if stream.task_ref is None:
                ref = self._make_task_ref(stream)
                with self._lock:
                    stream.task_ref = ref
            self._refill(stream)

    def _refill(self, stream: _JobStream) -> None:
        with self._lock:
            if self._stop.is_set() or stream.retired or self._queue is None:
                return
            failure = self._pool_failure
            limit = min(stream.end, stream.consumed + 1 + stream.lookahead)
            fresh = list(range(stream.next_to_enqueue, limit))
            stream.next_to_enqueue = max(stream.next_to_enqueue, limit)
            if failure is None:
                for iteration in fresh:
                    samples = list(stream.minibatches[iteration - stream.start])
                    self._queue.put((stream.name, iteration, samples, stream.task_ref))
                    _POOL_STATS["tasks_enqueued"] += 1
                    _publish(
                        "planner_task_enqueued", job=stream.name, iteration=iteration
                    )
        if failure is not None:
            # No worker is left to serve new iterations; keep the fail-fast
            # guarantee by marking them failed instead of enqueueing them
            # onto a queue nobody drains.
            for iteration in fresh:
                self._record_failed(
                    "pool", stream.name, iteration, RuntimeError(str(failure))
                )

    def notify_consumed(self, iteration: int, job: str = DEFAULT_JOB) -> None:
        """Tell the pool the executor finished ``iteration`` (advances the window)."""
        with self._lock:
            stream = self._stream(job)
            if stream.retired:
                return
            stream.consumed = max(stream.consumed, iteration)
            stream.payloads.pop(iteration, None)
        self.store.evict_iteration(iteration, job=job)
        self._refill(stream)

    def _drain_tasks(self) -> None:
        if self._queue is None:
            return
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break

    def stop(self) -> list[int]:
        """Stop the workers and report the abandoned iterations.

        The task queue is drained so no worker picks up new work; each
        worker finishes (or is terminated after a timeout) and every
        stream's enqueued iterations that were neither planned nor failed
        are recorded as *abandoned* (per stream — see
        :meth:`job_abandoned`), so a restart can re-plan exactly those
        instead of double-planning finished ones or silently skipping
        pending ones.  Returns the legacy (anonymous) stream's abandoned
        iterations.
        """
        with self._lock:
            if self._sealed:
                # Already stopped: keep the first snapshot instead of
                # recomputing from a now-empty queue.
                return self._default_abandoned_locked()
        self._stop.set()
        self._drain_tasks()
        if self._queue is not None:
            for _ in range(self.num_workers):
                self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - hung-worker safety net
                process.terminate()
                process.join(timeout=5.0)
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        self._drain_tasks()
        with self._lock:
            # Seal and snapshot atomically: a still-running thread worker
            # finishing after this point has its result dropped, so nothing
            # reported abandoned here can later turn up planned.
            self._sealed = True
            for stream in self._streams.values():
                if not stream.retired:
                    stream.abandoned = stream.unserved()
            return self._default_abandoned_locked()

    def _default_abandoned_locked(self) -> list[int]:
        stream = self._streams.get(DEFAULT_JOB)
        return list(stream.abandoned) if stream is not None else []

    # ------------------------------------------------------------------ fault injection

    def kill_workers(self, count: int | None = None) -> int:
        """Kill up to ``count`` live workers (all of them when ``None``).

        The chaos harness's worker-loss primitive.  Process workers are
        terminated — a worker holding a task dies with it, and the
        collector's existing crash machinery fails the orphaned iteration
        so consumers observe a :class:`PlanFailedError` instead of a hang.
        Thread workers are killed cooperatively (they exit before taking
        another task; the current task, if any, completes).  The call
        blocks until the victims are actually gone, so
        :meth:`live_workers` is accurate when it returns.

        Returns the number of workers killed.
        """
        if not self._started:
            return 0
        victims: list[Any] = [
            thread
            for thread in self._threads
            if thread.is_alive() and thread.name not in self._killed
        ]
        victims.extend(process for process in self._processes if process.is_alive())
        if count is not None:
            victims = victims[: max(0, count)]
        for victim in victims:
            if isinstance(victim, threading.Thread):
                self._killed.add(victim.name)
            else:
                victim.terminate()
        for victim in victims:
            victim.join(timeout=10.0)
        return len(victims)

    def inject_plan_loss(
        self,
        job: str,
        iteration: int,
        message: str = "injected transient store error: plan payload lost",
    ) -> bool:
        """Drop ``(job, iteration)``'s plan and mark it failed (transient fault).

        Models a transient instruction-store error: whatever the workers
        produced for the iteration is discarded (retained payload, store
        entries) and a failure marker is pushed in its place, so the
        consumer's next :meth:`wait_payload` raises
        :class:`PlanFailedError` exactly as a worker-side failure would.
        The fault is *transient* by construction — it poisons only this
        attempt's stream; a retried attempt replans the iteration under a
        fresh stream name and succeeds.

        Returns ``True`` if the fault was injected; ``False`` when there
        was nothing to poison (unknown/retired stream, iteration outside
        the stream's range or already consumed, or already failed).
        """
        with self._lock:
            stream = self._streams.get(job)
            if stream is None or stream.retired or self._sealed:
                return False
            if iteration < stream.start or iteration >= stream.end:
                return False
            if iteration <= stream.consumed:
                return False
            if iteration in stream.failed:
                return False
            stream.payloads.pop(iteration, None)
            stream.completed.discard(iteration)
            error = RuntimeError(message)
            stream.errors.append((iteration, error))
            stream.failed.add(iteration)
            self.store.evict_iteration(iteration, job=job)
            self.store.push_failure(iteration, message, job=job)
        return True

    # ------------------------------------------------------------------ telemetry

    def worker_metrics(self) -> dict[str, dict[str, Any]]:
        """Latest metrics snapshot shipped by each worker process.

        Empty for the thread backend (thread workers record straight into
        the parent registry) and until the first result arrives.
        """
        with self._lock:
            return {
                worker: dict(snapshot)
                for worker, snapshot in self._worker_metrics.items()
            }

    def telemetry_snapshot(self) -> dict[str, Any]:
        """Fleet-wide metrics view: parent registry + every worker's latest.

        Counters and histograms are summed across processes; gauges are
        last-writer-wins (see :func:`repro.obs.registry.aggregate_snapshots`).
        """
        with self._lock:
            snapshots = list(self._worker_metrics.values())
        return aggregate_snapshots([REGISTRY.snapshot(), *snapshots])

    def engine_stats(self) -> dict[str, int]:
        """Aggregated simulation-engine counters across parent and workers.

        The process-local :func:`repro.simulator.engine.engine_stats` cannot
        see planning done inside pool worker processes; this view sums the
        ``sim_engine.*`` counters over the parent and every worker's shipped
        snapshot, so order-search solves running on the planning cluster are
        accounted for.
        """
        combined = self.telemetry_snapshot()["counters"]
        prefix = "sim_engine."
        return {
            key[len(prefix):]: value
            for key, value in combined.items()
            if key.startswith(prefix)
        }

    # ------------------------------------------------------------------ status

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has spawned the workers."""
        return self._started

    def live_workers(self) -> int:
        """Worker threads/processes currently alive (0 after a clean stop)."""
        return sum(t.is_alive() for t in self._threads) + sum(
            p.is_alive() for p in self._processes
        )

    @property
    def errors(self) -> list[tuple[int, Exception]]:
        """The legacy stream's planning failures, as (iteration, exception)
        pairs, plus pool-level failures (worker deaths, total worker loss)
        keyed ``-1``."""
        with self._lock:
            stream = self._streams.get(DEFAULT_JOB)
            listed = list(stream.errors) if stream is not None else []
            listed.extend((-1, error) for error in self._pool_errors)
            return listed

    def job_errors(self, job: str = DEFAULT_JOB) -> list[tuple[int, Exception]]:
        """One stream's planning failures, as (iteration, exception) pairs."""
        with self._lock:
            return list(self._stream(job).errors)

    @property
    def pool_errors(self) -> list[Exception]:
        """Failures of the pool itself (worker deaths), not tied to a task."""
        with self._lock:
            return list(self._pool_errors)

    @property
    def abandoned(self) -> list[int]:
        """Legacy-stream iterations :meth:`stop` drained before planning."""
        with self._lock:
            return self._default_abandoned_locked()

    def job_abandoned(self, job: str = DEFAULT_JOB) -> list[int]:
        """One stream's abandoned iterations (set by stop/retire)."""
        with self._lock:
            return list(self._stream(job).abandoned)

    def planned_iterations(self, job: str = DEFAULT_JOB) -> list[int]:
        """Iterations of ``job`` whose plans have been pushed so far."""
        with self._lock:
            return sorted(record.iteration for record in self.records if record.job == job)

    def failed_iterations(self, job: str = DEFAULT_JOB) -> list[int]:
        """Iterations of ``job`` whose planning failed."""
        with self._lock:
            stream = self._streams.get(job)
            return sorted(stream.failed) if stream is not None else []

    def payload(self, iteration: int, job: str = DEFAULT_JOB) -> dict[str, Any] | None:
        """The :meth:`IterationPlan.to_dict` payload of ``iteration``, if planned.

        Payloads are retained for :meth:`submit_job` streams and for the
        legacy stream of a pool that owns its store; with an external store
        the legacy stream's plans live only in the store.
        """
        with self._lock:
            stream = self._streams.get(job)
            return stream.payloads.get(iteration) if stream is not None else None

    def wait_payload(
        self, iteration: int, timeout: float = 120.0, job: str = DEFAULT_JOB
    ) -> dict[str, Any]:
        """Block until ``(job, iteration)`` is planned and return its payload.

        Raises:
            RuntimeError: If the stream does not retain payloads (the legacy
                stream of a pool built with an external store; poll the
                store instead).
            PlanFailedError: If planning of the iteration failed.
            TimeoutError: If the payload does not appear within ``timeout``.
        """
        with self._lock:
            stream = self._stream(job)
        if not stream.retain_payloads:
            raise RuntimeError(
                "wait_payload() requires a pool-owned store (construct the "
                "PlannerPool without `store`); consumers of an external store "
                "should poll it directly"
            )
        deadline = time.perf_counter() + timeout
        while True:
            with self._lock:
                payload = stream.payloads.get(iteration)
                failure = next(
                    (error for it, error in stream.errors if it == iteration), None
                )
                if failure is None:
                    failure = self._pool_failure
            if failure is None and self._started and self.live_workers() == 0:
                # Every worker is gone (e.g. killed by the chaos harness)
                # and the iteration is neither planned nor failed: nothing
                # will ever serve it, so fail fast instead of spinning out
                # the full timeout.
                failure = RuntimeError("all planner workers are dead")
            if payload is not None:
                return payload
            if failure is not None:
                raise PlanFailedError(
                    f"planning failed for iteration {iteration}: {failure}",
                    iteration=iteration,
                    job=job,
                ) from failure
            if time.perf_counter() > deadline:
                raise TimeoutError(
                    f"no plan for iteration {iteration} after {timeout:.1f}s"
                )
            time.sleep(0.002)
