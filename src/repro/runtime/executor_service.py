"""Executor side of the runtime: fetch plans, run them, track stalls.

The executor service owns the simulated devices of one data-parallel replica
group.  For every iteration it fetches each replica's execution plan from
the instruction store — blocking (and recording the stall time) if planning
has not finished yet — deserialises it, and runs it on the
instruction-level executor with execution-time noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.device import SimulatedGPU
from repro.cluster.network import NetworkModel
from repro.core.execution_plan import ExecutionPlan
from repro.costmodel.cost_model import CostModel
from repro.instructions.ops import BackwardPass, ForwardPass, PipelineInstruction
from repro.instructions.store import InstructionStore, PlanNotReadyError
from repro.model.transformer import build_stage_models
from repro.simulator.executor import InstructionExecutor
from repro.utils.rng import SeedLike, new_rng


@dataclass
class ExecutorStats:
    """Per-iteration execution statistics collected by the service.

    Attributes:
        iteration: Iteration index.
        stall_s: Wall-clock time spent waiting for the plan to appear in the
            instruction store (0 when planning kept ahead of execution).
        simulated_ms: Simulated execution time of the iteration (slowest
            replica).
        peak_memory_bytes: Largest per-device peak across replicas.
    """

    iteration: int
    stall_s: float
    simulated_ms: float
    peak_memory_bytes: float


@dataclass
class ExecutorService:
    """Fetches plans from the store and executes them on simulated devices.

    Attributes:
        cost_model: Cost model describing the pipeline (used to build the
            ground-truth stage models and static memory).
        store: The shared instruction store.
        data_parallel_size: Number of replicas whose plans to fetch per
            iteration.
        noise_std: Execution-time noise of the simulated devices.
        seed: Noise seed.
        fetch_timeout_s: Maximum time to wait for a plan before failing.
        stages_same_node: Link class used for inter-stage transfers.
    """

    cost_model: CostModel
    store: InstructionStore
    data_parallel_size: int = 1
    noise_std: float = 0.05
    seed: SeedLike = 0
    fetch_timeout_s: float = 120.0
    stages_same_node: bool = True
    stats: list[ExecutorStats] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._stage_models = build_stage_models(
            self.cost_model.config,
            self.cost_model.num_stages,
            tensor_parallel=self.cost_model.tensor_parallel,
            zero_shards=self.cost_model.zero_shards,
        )
        self._static = [
            self.cost_model.stage_static_bytes(j) for j in range(self.cost_model.num_stages)
        ]
        self._network = NetworkModel()
        self._rng = new_rng(self.seed)

    # ------------------------------------------------------------------ internals

    def _fetch(self, iteration: int, replica: int) -> ExecutionPlan:
        deadline = time.perf_counter() + self.fetch_timeout_s
        while True:
            try:
                payload = self.store.fetch(iteration, replica)
                return ExecutionPlan.from_dict(payload)
            except PlanNotReadyError:
                if time.perf_counter() > deadline:
                    raise
                time.sleep(0.002)

    def _executor(self) -> InstructionExecutor:
        gpu = SimulatedGPU(
            self.cost_model.device_spec,
            noise_std=self.noise_std,
            seed=int(self._rng.integers(0, 2**31 - 1)),
        )

        def duration(instr: PipelineInstruction) -> float:
            stage_model = self._stage_models[instr.stage]
            if isinstance(instr, ForwardPass):
                return stage_model.forward_time_ms(gpu, instr.shape)
            if isinstance(instr, BackwardPass):
                return stage_model.backward_time_ms(gpu, instr.shape, instr.recompute)
            raise TypeError(f"not a compute instruction: {type(instr).__name__}")

        def activation(instr: PipelineInstruction) -> float:
            return self._stage_models[instr.stage].activation_bytes(instr.shape, instr.recompute)

        return InstructionExecutor(
            compute_duration_fn=duration,
            transfer_time_fn=lambda nbytes, src, dst: self._network.p2p_time_ms(
                nbytes, same_node=self.stages_same_node
            ),
            activation_bytes_fn=activation,
            static_bytes=self._static,
        )

    # ------------------------------------------------------------------ API

    def run_iteration(self, iteration: int) -> ExecutorStats:
        """Fetch and execute one iteration's plans; returns its statistics."""
        stall_start = time.perf_counter()
        plans = [self._fetch(iteration, replica) for replica in range(self.data_parallel_size)]
        stall = time.perf_counter() - stall_start

        simulated_ms = 0.0
        peak = 0.0
        for plan in plans:
            result = self._executor().run(plan.device_instructions)
            simulated_ms = max(simulated_ms, result.makespan_ms)
            peak = max(peak, max(result.peak_memory_bytes))
        stats = ExecutorStats(
            iteration=iteration, stall_s=stall, simulated_ms=simulated_ms, peak_memory_bytes=peak
        )
        self.stats.append(stats)
        return stats

    def total_stall_s(self) -> float:
        """Total wall-clock time spent waiting for plans."""
        return sum(record.stall_s for record in self.stats)

    def total_simulated_ms(self) -> float:
        """Total simulated execution time across processed iterations."""
        return sum(record.simulated_ms for record in self.stats)
