"""Planner/executor runtime (paper §3, Fig. 9).

The real DynaPipe hides its per-iteration planning cost by running planners
on CPU cores concurrently with GPU execution: planners pre-fetch future
mini-batches, generate execution plans ahead of time, and push them to a
distributed instruction store from which executors fetch them just in time.

This package reproduces that runtime on top of the in-process substrate:

* :class:`~repro.runtime.planner_pool.PlannerPool` — a pool of worker
  *processes* (with a thread fallback) that plans future iterations ahead of
  the executor on real CPU cores and pushes serialised plans to the
  :class:`~repro.instructions.store.InstructionStore`.
* :class:`~repro.runtime.executor_service.ExecutorService` — fetches plans
  from the store (blocking until they are ready), runs them on the
  instruction-level simulator, and records how long it had to stall waiting
  for plans — the quantity that must stay near zero for the paper's claim
  that planning fully overlaps with training.
* :class:`~repro.runtime.orchestrator.TrainingOrchestrator` — wires the two
  together for a multi-iteration run and reports the overlap statistics.
"""

from repro.runtime.executor_service import ExecutorService, ExecutorStats
from repro.runtime.orchestrator import OrchestratorReport, TrainingOrchestrator
from repro.runtime.planner_pool import PlannerPool, PlanningRecord

__all__ = [
    "PlannerPool",
    "PlanningRecord",
    "ExecutorService",
    "ExecutorStats",
    "TrainingOrchestrator",
    "OrchestratorReport",
]
