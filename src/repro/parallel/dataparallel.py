"""Data-parallel gradient synchronisation cost.

Each pipeline stage's weight gradients are all-reduced across the
data-parallel replicas once per iteration.  Different stages use disjoint
device groups, so the synchronisation time is the maximum (not the sum) over
stages; with balanced layer assignment all stages carry roughly the same
gradient volume.
"""

from __future__ import annotations

from repro.cluster.network import NetworkModel
from repro.model.config import ModelConfig
from repro.model.memory import weight_gradient_bytes
from repro.model.transformer import assign_layers


def gradient_allreduce_ms(
    model: ModelConfig,
    data_parallel: int,
    pipeline_parallel: int,
    tensor_parallel: int = 1,
    network: NetworkModel | None = None,
    same_node: bool = False,
) -> float:
    """Per-iteration gradient all-reduce time across data-parallel replicas.

    Args:
        model: Model configuration.
        data_parallel: Number of replicas participating in the all-reduce.
        pipeline_parallel: Number of pipeline stages (determines per-stage
            gradient volume).
        tensor_parallel: Tensor-parallel degree (shards the gradients).
        network: Communication model (defaults to the p4d-like model).
        same_node: Whether the data-parallel group is intra-node.
    """
    if data_parallel <= 1:
        return 0.0
    network = network or NetworkModel()
    assignments = assign_layers(model, pipeline_parallel)
    heaviest_stage_layers = max(assignment.total_layers for assignment in assignments)
    nbytes = weight_gradient_bytes(model, max(heaviest_stage_layers, 1), tensor_parallel)
    return network.allreduce_time_ms(nbytes, data_parallel, same_node=same_node)
