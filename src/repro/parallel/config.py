"""3D parallel configuration.

A configuration assigns the cluster's GPUs to data, pipeline and tensor
parallelism; the product of the three degrees must equal the number of GPUs.
Following the paper's search space, all degrees are powers of two and tensor
parallelism never crosses node boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.config import ModelConfig


@dataclass(frozen=True, order=True)
class ParallelConfig:
    """One point of the 3D parallelism search space.

    Attributes:
        data_parallel: Number of model replicas.
        pipeline_parallel: Number of pipeline stages per replica.
        tensor_parallel: Tensor-parallel degree within each stage.
    """

    data_parallel: int
    pipeline_parallel: int
    tensor_parallel: int

    def __post_init__(self) -> None:
        for name in ("data_parallel", "pipeline_parallel", "tensor_parallel"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    @property
    def num_gpus(self) -> int:
        """Total GPUs the configuration occupies."""
        return self.data_parallel * self.pipeline_parallel * self.tensor_parallel

    def describe(self) -> str:
        """Short human-readable form, e.g. ``"dp2-pp2-tp2"``."""
        return f"dp{self.data_parallel}-pp{self.pipeline_parallel}-tp{self.tensor_parallel}"

    def fits_model(self, model: ModelConfig) -> bool:
        """Whether the model has enough layers for the pipeline depth."""
        return model.total_layer_count >= self.pipeline_parallel


def _powers_of_two_up_to(limit: int) -> list[int]:
    values = []
    v = 1
    while v <= limit:
        values.append(v)
        v *= 2
    return values


def enumerate_parallel_configs(
    num_gpus: int,
    gpus_per_node: int = 8,
    max_tensor_parallel: int | None = None,
    model: ModelConfig | None = None,
) -> list[ParallelConfig]:
    """Enumerate the power-of-two 3D parallel configurations for ``num_gpus``.

    Args:
        num_gpus: Cluster size; must be a power of two (the paper's sizes are
            4, 8, 16 and 32).
        gpus_per_node: Node size; tensor parallelism is limited to this.
        max_tensor_parallel: Optional tighter cap on tensor parallelism.
        model: Optional model configuration used to drop pipeline depths
            exceeding the model's layer count.
    """
    if num_gpus < 1:
        raise ValueError(f"num_gpus must be >= 1, got {num_gpus}")
    if num_gpus & (num_gpus - 1) != 0:
        raise ValueError(f"num_gpus must be a power of two, got {num_gpus}")
    tp_cap = min(gpus_per_node, num_gpus)
    if max_tensor_parallel is not None:
        tp_cap = min(tp_cap, max_tensor_parallel)
    configs = []
    for tensor_parallel in _powers_of_two_up_to(tp_cap):
        remaining = num_gpus // tensor_parallel
        for pipeline_parallel in _powers_of_two_up_to(remaining):
            data_parallel = remaining // pipeline_parallel
            config = ParallelConfig(
                data_parallel=data_parallel,
                pipeline_parallel=pipeline_parallel,
                tensor_parallel=tensor_parallel,
            )
            if config.num_gpus != num_gpus:
                continue
            if model is not None and not config.fits_model(model):
                continue
            configs.append(config)
    return sorted(set(configs))
