"""Grid search over 3D parallelism (and baseline hyper-parameters).

The paper reports each system under its best grid-searched configuration:
powers of two in each parallel dimension (tensor parallelism intra-node
only), and, for the packing baseline, additionally the micro-batch size and
activation checkpointing strategy (§8, "Baselines").  The search evaluates a
handful of mini-batches per candidate using the planners' own cost models —
no instruction-level execution — which is fast enough to sweep the whole
space inside the benchmark harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.device import A100_40GB, DeviceSpec
from repro.costmodel.cost_model import CostModel
from repro.data.tasks import Sample
from repro.model.config import ModelConfig
from repro.parallel.config import ParallelConfig, enumerate_parallel_configs
from repro.parallel.dataparallel import gradient_allreduce_ms


@dataclass
class GridSearchResult:
    """Outcome of a grid search.

    Attributes:
        best_config: The best parallel configuration found.
        best_throughput: Estimated throughput (actual tokens/s) of the best
            configuration.
        best_options: Extra hyper-parameters of the best configuration (for
            the baseline: micro-batch size and recompute mode).
        evaluations: One record per evaluated candidate with its outcome.
    """

    best_config: ParallelConfig | None
    best_throughput: float
    best_options: dict = field(default_factory=dict)
    evaluations: list[dict] = field(default_factory=list)


def _build_cost_model(
    model: ModelConfig,
    config: ParallelConfig,
    max_seq_len: int,
    device_spec: DeviceSpec,
) -> CostModel | None:
    """Cost model for one parallel configuration, or None if it cannot fit."""
    if not config.fits_model(model):
        return None
    cost_model = CostModel(
        model,
        num_stages=config.pipeline_parallel,
        tensor_parallel=config.tensor_parallel,
        zero_shards=config.data_parallel,
        device_spec=device_spec,
        max_profile_seq_len=max(max_seq_len, 32),
    )
    # Static memory alone must leave room for at least some activations.
    if cost_model.min_activation_budget_bytes() <= 0:
        return None
    return cost_model


def _estimate_throughput(planner, minibatches: Sequence[list[Sample]]) -> float:
    """Tokens/s estimate from the planner's own predictions (no execution)."""
    from repro.core.recomputation import OutOfMemoryError

    total_tokens = 0
    total_ms = 0.0
    for iteration, samples in enumerate(minibatches):
        try:
            plan = planner.plan(samples, iteration=iteration)
        except (OutOfMemoryError, ValueError):
            return 0.0
        total_tokens += sum(s.total_tokens for s in samples)
        total_ms += plan.predicted_iteration_ms
    if total_ms <= 0:
        return 0.0
    return total_tokens / (total_ms / 1e3)


def _sample_minibatches(
    samples: Sequence[Sample],
    global_batch_tokens: int,
    count: int,
    seed: int,
) -> list[list[Sample]]:
    from repro.data.sampler import MiniBatchSampler

    sampler = MiniBatchSampler(samples, global_batch_tokens, seed=seed)
    minibatches = []
    for minibatch in sampler.epoch(0):
        minibatches.append(minibatch.samples)
        if len(minibatches) >= count:
            break
    return minibatches


def grid_search(
    model: ModelConfig,
    num_gpus: int,
    samples: Sequence[Sample],
    global_batch_tokens: int,
    max_seq_len: int,
    system: str = "dynapipe",
    gpus_per_node: int = 8,
    device_spec: DeviceSpec = A100_40GB,
    evaluation_iterations: int = 2,
    micro_batch_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32),
    seed: int = 0,
    configs: Sequence[ParallelConfig] | None = None,
) -> GridSearchResult:
    """Search parallel configurations for ``system`` on ``num_gpus`` GPUs.

    Args:
        model: Model configuration (Table 1).
        num_gpus: Cluster size.
        samples: Dataset samples (already truncated to ``max_seq_len``).
        global_batch_tokens: Global batch size in tokens.
        max_seq_len: Maximum sequence length of the run.
        system: ``"dynapipe"`` or ``"baseline"``.
        gpus_per_node: Node size (limits tensor parallelism).
        device_spec: Device the cluster is built from.
        evaluation_iterations: Mini-batches used to score each candidate.
        micro_batch_sizes: Baseline micro-batch-size candidates.
        seed: Sampling seed.
        configs: Optional explicit list of parallel configurations to search
            (used by "MLM+DS (c)" to force DynaPipe's configuration).

    Returns:
        A :class:`GridSearchResult`; ``best_config`` is ``None`` when no
        candidate is feasible.
    """
    from repro.baselines.mlm_ds import BaselineConfig, MLMDeepSpeedBaseline
    from repro.core.planner import DynaPipePlanner
    from repro.model.memory import RecomputeMode

    if system not in ("dynapipe", "baseline"):
        raise ValueError(f"unknown system {system!r}; expected 'dynapipe' or 'baseline'")
    minibatches = _sample_minibatches(samples, global_batch_tokens, evaluation_iterations, seed)
    if not minibatches:
        raise ValueError("no mini-batches could be drawn from the provided samples")
    candidates = list(configs) if configs is not None else enumerate_parallel_configs(
        num_gpus, gpus_per_node=gpus_per_node, model=model
    )

    result = GridSearchResult(best_config=None, best_throughput=0.0)
    for config in candidates:
        cost_model = _build_cost_model(model, config, max_seq_len, device_spec)
        if cost_model is None:
            result.evaluations.append(
                {"config": config.describe(), "feasible": False, "reason": "static memory"}
            )
            continue
        if system == "dynapipe":
            planner = DynaPipePlanner(cost_model, data_parallel_size=config.data_parallel)
            throughput = _estimate_throughput(planner, minibatches)
            record = {
                "config": config.describe(),
                "feasible": throughput > 0,
                "throughput": throughput,
            }
            result.evaluations.append(record)
            if throughput > result.best_throughput:
                result.best_config = config
                result.best_throughput = throughput
                result.best_options = {}
        else:
            for micro_batch_size in micro_batch_sizes:
                for recompute in (RecomputeMode.NONE, RecomputeMode.FULL):
                    baseline = MLMDeepSpeedBaseline(
                        cost_model,
                        data_parallel_size=config.data_parallel,
                        config=BaselineConfig(
                            max_seq_len=max_seq_len,
                            micro_batch_size=micro_batch_size,
                            recompute=recompute,
                        ),
                    )
                    throughput = _estimate_throughput(baseline, minibatches)
                    record = {
                        "config": config.describe(),
                        "micro_batch_size": micro_batch_size,
                        "recompute": recompute.value,
                        "feasible": throughput > 0,
                        "throughput": throughput,
                    }
                    result.evaluations.append(record)
                    if throughput > result.best_throughput:
                        result.best_config = config
                        result.best_throughput = throughput
                        result.best_options = {
                            "micro_batch_size": micro_batch_size,
                            "recompute": recompute,
                        }
    return result


__all__ = ["grid_search", "GridSearchResult", "gradient_allreduce_ms"]
