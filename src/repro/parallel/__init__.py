"""3D parallelism configuration and grid search.

The paper grid-searches data/tensor/pipeline parallelism combinations (powers
of two, tensor parallelism restricted to intra-node) for both DynaPipe and
the baselines, and reports each system under its best configuration (plus
the baseline under DynaPipe's best configuration, "MLM+DS (c)").  This
package provides the configuration object, its enumeration, the
data-parallel gradient synchronisation cost model, and the grid search
driver shared by the benchmark harnesses.
"""

from repro.parallel.config import ParallelConfig, enumerate_parallel_configs
from repro.parallel.dataparallel import gradient_allreduce_ms
from repro.parallel.grid_search import GridSearchResult, grid_search

__all__ = [
    "ParallelConfig",
    "enumerate_parallel_configs",
    "gradient_allreduce_ms",
    "grid_search",
    "GridSearchResult",
]
