"""Communicated tensor shapes.

The execution plan embeds the byte counts of every transferred tensor so
that executors never exchange shapes at runtime (paper §6).  Activation
transfers from stage ``j`` to ``j+1`` carry the boundary activation of the
micro-batch on stage ``j``; gradient transfers from ``j+1`` back to ``j``
carry a tensor of the same size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.costmodel.cost_model import CostModel
from repro.model.transformer import MicroBatchShape


@dataclass
class TransferShapes:
    """Byte counts of the inter-stage transfers of one iteration.

    Attributes:
        activation_bytes: ``activation_bytes[mb][j]`` is the size of the
            activation tensor sent from stage ``j`` to ``j+1`` for
            micro-batch ``mb`` (the last stage entry is unused and zero).
        gradient_bytes: ``gradient_bytes[mb][j]`` is the size of the gradient
            tensor sent from stage ``j`` back to ``j-1`` (the first stage
            entry is unused and zero).
    """

    activation_bytes: list[list[float]]
    gradient_bytes: list[list[float]]

    @classmethod
    def from_cost_model(
        cls, cost_model: CostModel, shapes: Sequence[MicroBatchShape]
    ) -> "TransferShapes":
        """Derive transfer sizes for ``shapes`` from ``cost_model``."""
        num_stages = cost_model.num_stages
        activation: list[list[float]] = []
        gradient: list[list[float]] = []
        for shape in shapes:
            act_row = []
            grad_row = [0.0]
            for stage in range(num_stages):
                if stage < num_stages - 1:
                    nbytes = cost_model.boundary_tensor_bytes(stage, shape)
                else:
                    nbytes = 0.0
                act_row.append(nbytes)
            for stage in range(1, num_stages):
                # Gradient w.r.t. the input of stage `stage` has the size of the
                # activation that was sent into it.
                grad_row.append(act_row[stage - 1])
            activation.append(act_row)
            gradient.append(grad_row)
        return cls(activation_bytes=activation, gradient_bytes=gradient)

    def act_bytes(self, microbatch: int, from_stage: int) -> float:
        """Activation bytes sent from ``from_stage`` to ``from_stage + 1``."""
        return self.activation_bytes[microbatch][from_stage]

    def grad_bytes(self, microbatch: int, from_stage: int) -> float:
        """Gradient bytes sent from ``from_stage`` to ``from_stage - 1``."""
        return self.gradient_bytes[microbatch][from_stage]
