"""Ahead-of-time communication planning and instruction stream generation.

Given a pipeline schedule and the simulated timeline of its compute ops, the
planner emits one instruction stream per device containing:

* the compute ops in their scheduled order (``ForwardPass`` / ``BackwardPass``),
* ``Send*Start`` / ``Recv*Start`` ops for every inter-stage transfer, and
* ``WaitRecv*`` ops placed immediately before the compute op that consumes a
  received tensor.

Following §6 of the paper, the send *and* the matching receive of a transfer
are both scheduled at the moment the tensor is produced on the simulated
timeline.  Because every device orders its Start ops for a given neighbour
by that same global production time, the two sides of every channel post
transfers in the same order, which guarantees deadlock freedom (verified by
:mod:`repro.comm.deadlock` and, dynamically, by the instruction executor).

The module also provides the *naive* ordering — send right after production,
receive right before use — which is what existing systems do and which
deadlocks under dynamic (non-1F1B) schedules; it is used by tests, examples
and the baseline to demonstrate the problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.comm.shapes import TransferShapes
from repro.instructions.ops import (
    BackwardPass,
    ForwardPass,
    PipelineInstruction,
    RecvActStart,
    RecvGradStart,
    SendActStart,
    SendGradStart,
    WaitRecvAct,
    WaitRecvGrad,
)
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape
from repro.schedule.events import ComputeOp, OpType, PipelineSchedule


@dataclass(frozen=True)
class _PlannedComm:
    """A communication Start op anchored on a device's compute sequence.

    Attributes:
        device: Device whose stream the op belongs to.
        anchor: Index into the device's compute-op sequence before which the
            op must be launched (``len(ops)`` means "after the last op").
        order_time: Global time used to order Start ops with the same anchor.
        sequence: Tie-break counter preserving planning order.
        instruction: The Start instruction itself.
    """

    device: int
    anchor: int
    order_time: float
    sequence: int
    instruction: PipelineInstruction


def _compute_instruction(
    op: ComputeOp,
    shapes: Sequence[MicroBatchShape],
    recompute: Sequence[RecomputeMode],
) -> PipelineInstruction:
    """Build the ForwardPass/BackwardPass instruction for a compute op."""
    shape = shapes[op.microbatch]
    mode = recompute[op.microbatch]
    if op.op_type is OpType.FORWARD:
        return ForwardPass(microbatch=op.microbatch, stage=op.stage, shape=shape, recompute=mode)
    return BackwardPass(microbatch=op.microbatch, stage=op.stage, shape=shape, recompute=mode)


def _normalise_recompute(
    recompute: RecomputeMode | Sequence[RecomputeMode], count: int
) -> list[RecomputeMode]:
    if isinstance(recompute, RecomputeMode):
        return [recompute] * count
    recompute = list(recompute)
    if len(recompute) != count:
        raise ValueError(
            f"expected {count} recompute modes, got {len(recompute)}"
        )
    return recompute


def build_instruction_streams(
    schedule: PipelineSchedule,
    op_times: dict[ComputeOp, tuple[float, float]],
    shapes: Sequence[MicroBatchShape],
    transfer_shapes: TransferShapes,
    recompute: RecomputeMode | Sequence[RecomputeMode] = RecomputeMode.NONE,
) -> list[list[PipelineInstruction]]:
    """Generate deadlock-free per-device instruction streams (paper §6).

    Args:
        schedule: The pipeline schedule (per-device compute op order).
        op_times: Simulated (start, end) times of every compute op, e.g. from
            :func:`repro.simulator.engine.simulate_schedule`.
        shapes: Padded shape of each micro-batch (indexed by micro-batch id).
        transfer_shapes: Byte counts of all inter-stage transfers.
        recompute: Recomputation mode, either global or per micro-batch.

    Returns:
        One list of instructions per device, in execution order.
    """
    num_stages = schedule.num_stages
    if len(shapes) != schedule.num_microbatches:
        raise ValueError(
            f"expected {schedule.num_microbatches} shapes, got {len(shapes)}"
        )
    recompute_modes = _normalise_recompute(recompute, schedule.num_microbatches)

    # Position of each compute op within its device's sequence.
    op_position: dict[ComputeOp, int] = {}
    for stage_schedule in schedule.stages:
        for position, op in enumerate(stage_schedule.ops):
            op_position[op] = position

    def anchor_for_time(device: int, time: float) -> int:
        """First compute-op position on ``device`` that starts at/after ``time``."""
        for position, op in enumerate(schedule.stage(device).ops):
            if op_times[op][0] >= time - 1e-9:
                return position
        return len(schedule.stage(device).ops)

    planned: list[_PlannedComm] = []
    sequence = 0
    # Iterate compute ops by ascending end time; schedule both sides of each
    # transfer at the producer's end time.
    for op in sorted(op_times, key=lambda o: (op_times[o][1], o.stage, o.microbatch)):
        end_time = op_times[op][1]
        mb = op.microbatch
        if op.op_type is OpType.FORWARD and op.stage < num_stages - 1:
            nbytes = transfer_shapes.act_bytes(mb, op.stage)
            send = SendActStart(microbatch=mb, stage=op.stage, peer=op.stage + 1, nbytes=nbytes)
            recv = RecvActStart(microbatch=mb, stage=op.stage + 1, peer=op.stage, nbytes=nbytes)
            planned.append(
                _PlannedComm(op.stage, op_position[op] + 1, end_time, sequence, send)
            )
            sequence += 1
            planned.append(
                _PlannedComm(op.stage + 1, anchor_for_time(op.stage + 1, end_time), end_time, sequence, recv)
            )
            sequence += 1
        elif op.op_type is OpType.BACKWARD and op.stage > 0:
            nbytes = transfer_shapes.grad_bytes(mb, op.stage)
            send = SendGradStart(microbatch=mb, stage=op.stage, peer=op.stage - 1, nbytes=nbytes)
            recv = RecvGradStart(microbatch=mb, stage=op.stage - 1, peer=op.stage, nbytes=nbytes)
            planned.append(
                _PlannedComm(op.stage, op_position[op] + 1, end_time, sequence, send)
            )
            sequence += 1
            planned.append(
                _PlannedComm(op.stage - 1, anchor_for_time(op.stage - 1, end_time), end_time, sequence, recv)
            )
            sequence += 1

    # Group planned comm ops by (device, anchor), keeping the global order.
    by_anchor: dict[tuple[int, int], list[_PlannedComm]] = {}
    for item in planned:
        by_anchor.setdefault((item.device, item.anchor), []).append(item)
    for items in by_anchor.values():
        items.sort(key=lambda item: (item.order_time, item.sequence))

    streams: list[list[PipelineInstruction]] = []
    for device in range(num_stages):
        stream: list[PipelineInstruction] = []
        device_ops = schedule.stage(device).ops
        for position, op in enumerate(device_ops):
            # Comm Start ops anchored before this compute op.
            for item in by_anchor.get((device, position), []):
                stream.append(item.instruction)
            # Wait for the tensor this compute op consumes, if any.
            if op.op_type is OpType.FORWARD and device > 0:
                stream.append(WaitRecvAct(microbatch=op.microbatch, stage=device, peer=device - 1))
            elif op.op_type is OpType.BACKWARD and device < num_stages - 1:
                stream.append(WaitRecvGrad(microbatch=op.microbatch, stage=device, peer=device + 1))
            stream.append(_compute_instruction(op, shapes, recompute_modes))
        # Comm ops anchored after the final compute op.
        for item in by_anchor.get((device, len(device_ops)), []):
            stream.append(item.instruction)
        streams.append(stream)
    return streams


def build_naive_instruction_streams(
    schedule: PipelineSchedule,
    shapes: Sequence[MicroBatchShape],
    transfer_shapes: TransferShapes,
    recompute: RecomputeMode | Sequence[RecomputeMode] = RecomputeMode.NONE,
) -> list[list[PipelineInstruction]]:
    """Generate instruction streams with the *naive* communication order.

    Sends are posted immediately after the compute op that produces the
    tensor; receives are posted immediately before the compute op that
    consumes it.  This matches what 1F1B systems do and works for 1F1B's
    regular pattern, but produces mismatched channel orders — and therefore
    deadlocks — under dynamic schedules (paper §2.3, Fig. 8).
    """
    num_stages = schedule.num_stages
    recompute_modes = _normalise_recompute(recompute, schedule.num_microbatches)
    streams = []
    for device in range(num_stages):
        stream: list[PipelineInstruction] = []
        for op in schedule.stage(device).ops:
            mb = op.microbatch
            if op.op_type is OpType.FORWARD:
                if device > 0:
                    nbytes = transfer_shapes.act_bytes(mb, device - 1)
                    stream.append(RecvActStart(microbatch=mb, stage=device, peer=device - 1, nbytes=nbytes))
                    stream.append(WaitRecvAct(microbatch=mb, stage=device, peer=device - 1))
                stream.append(_compute_instruction(op, shapes, recompute_modes))
                if device < num_stages - 1:
                    nbytes = transfer_shapes.act_bytes(mb, device)
                    stream.append(SendActStart(microbatch=mb, stage=device, peer=device + 1, nbytes=nbytes))
            else:
                if device < num_stages - 1:
                    nbytes = transfer_shapes.grad_bytes(mb, device + 1)
                    stream.append(RecvGradStart(microbatch=mb, stage=device, peer=device + 1, nbytes=nbytes))
                    stream.append(WaitRecvGrad(microbatch=mb, stage=device, peer=device + 1))
                stream.append(_compute_instruction(op, shapes, recompute_modes))
                if device > 0:
                    nbytes = transfer_shapes.grad_bytes(mb, device)
                    stream.append(SendGradStart(microbatch=mb, stage=device, peer=device - 1, nbytes=nbytes))
        streams.append(stream)
    return streams
