"""Communication planning (paper §6).

Dynamic pipelines produce irregular communication patterns: consecutive
stages of a micro-batch are no longer scheduled back-to-back, so the naive
policy of "send right after production, receive right before use" can post
mismatching orders on the single NCCL channel between two devices and
deadlock.  DynaPipe instead plans all sends *and* receives ahead of time, at
the moment the tensor is produced on a simulated timeline, which guarantees
both sides of every channel post transfers in the same order.

This package contains the ahead-of-time planner that turns a pipeline
schedule plus its simulated timeline into per-device instruction streams,
the naive-ordering generator used to demonstrate the deadlock, and a static
deadlock/order-mismatch checker.
"""

from repro.comm.deadlock import CommOrderReport, check_comm_order
from repro.comm.planner import (
    build_instruction_streams,
    build_naive_instruction_streams,
)
from repro.comm.shapes import TransferShapes

__all__ = [
    "build_instruction_streams",
    "build_naive_instruction_streams",
    "check_comm_order",
    "CommOrderReport",
    "TransferShapes",
]
