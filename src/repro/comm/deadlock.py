"""Static communication-order analysis.

Checks, without running the executor, whether the per-device instruction
streams post transfers on every device-pair channel in a mutually consistent
order.  A mismatch means the execution would deadlock under NCCL's
single-channel-per-pair constraint (paper §2.3 / §6); DynaPipe's planned
streams must always pass this check, while the naive ordering generally
fails it for non-1F1B schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.instructions.ops import PipelineInstruction, _CommStart
from repro.simulator.executor import _transfer_key_for_start


@dataclass
class CommOrderReport:
    """Result of the static communication-order check.

    Attributes:
        consistent: Whether every channel's two posting orders can be matched.
        mismatches: One entry per inconsistent channel: the device pair, the
            position of the first divergence, and the two conflicting
            transfer keys.
        channels_checked: Number of device pairs that exchange any transfer.
    """

    consistent: bool
    mismatches: list[dict] = field(default_factory=list)
    channels_checked: int = 0


def check_comm_order(
    device_instructions: Sequence[Sequence[PipelineInstruction]],
) -> CommOrderReport:
    """Check the posting-order consistency of ``device_instructions``."""
    # Collect, per unordered device pair, each side's posting order.
    orders: dict[tuple[int, int], dict[int, list[tuple]]] = {}
    for device, stream in enumerate(device_instructions):
        for instruction in stream:
            if not isinstance(instruction, _CommStart):
                continue
            pair = (
                (instruction.stage, instruction.peer)
                if instruction.stage < instruction.peer
                else (instruction.peer, instruction.stage)
            )
            per_side = orders.setdefault(pair, {pair[0]: [], pair[1]: []})
            key = _transfer_key_for_start(instruction)
            per_side[device].append((key, instruction.is_send))

    mismatches = []
    for pair, per_side in orders.items():
        a, b = pair
        side_a, side_b = per_side[a], per_side[b]
        if len(side_a) != len(side_b):
            mismatches.append(
                {
                    "pair": pair,
                    "position": min(len(side_a), len(side_b)),
                    "reason": "unequal number of posted transfers",
                    "left": len(side_a),
                    "right": len(side_b),
                }
            )
            continue
        for position, ((key_a, send_a), (key_b, send_b)) in enumerate(zip(side_a, side_b)):
            if key_a != key_b or send_a == send_b:
                mismatches.append(
                    {
                        "pair": pair,
                        "position": position,
                        "reason": "posting order mismatch",
                        "left": key_a,
                        "right": key_b,
                    }
                )
                break

    return CommOrderReport(
        consistent=not mismatches,
        mismatches=mismatches,
        channels_checked=len(orders),
    )
