"""Pipeline schedules.

A *pipeline schedule* fixes, for every device (stage), the order in which
the forward and backward passes of the micro-batches execute on it.  The
actual start/end times then follow from micro-batch execution times and
cross-stage dependencies, which the simulator resolves.

This package contains the schedule representation, the standard 1F1B
schedule used by the baselines, the plain cyclic schedule that DynaPipe's
memory-aware adaptive schedule builds on, the safety-stock analysis of
§5, and structural validation helpers.  The memory-aware adaptive schedule
itself (Alg. 1) lives in :mod:`repro.core.adaptive_schedule` because it is
part of the paper's primary contribution.
"""

from repro.schedule.events import ComputeOp, OpType, PipelineSchedule, StageSchedule
from repro.schedule.one_f_one_b import one_f_one_b_schedule
from repro.schedule.cyclic import cyclic_schedule
from repro.schedule.safety_stock import SafetyStockProfile, safety_stock_profile
from repro.schedule.validation import ScheduleValidationError, validate_schedule

__all__ = [
    "OpType",
    "ComputeOp",
    "StageSchedule",
    "PipelineSchedule",
    "one_f_one_b_schedule",
    "cyclic_schedule",
    "SafetyStockProfile",
    "safety_stock_profile",
    "ScheduleValidationError",
    "validate_schedule",
]
