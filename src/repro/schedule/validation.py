"""Structural validation of pipeline schedules.

A schedule is structurally valid when it could possibly be executed,
regardless of timing:

* every stage executes every micro-batch's forward and backward exactly once;
* on each stage, a micro-batch's forward precedes its backward;
* forward passes of a micro-batch appear in non-decreasing stage order when
  projected on any single stage pair (guaranteed by per-stage uniqueness);
* the per-stage order is consistent with the pipeline dependency graph,
  i.e. the dependency graph plus the per-stage orders is acyclic (otherwise
  execution would deadlock even with perfect communication).
"""

from __future__ import annotations

from repro.schedule.events import ComputeOp, OpType, PipelineSchedule


class ScheduleValidationError(ValueError):
    """Raised when a pipeline schedule is structurally invalid."""


def _dependency_edges(schedule: PipelineSchedule) -> list[tuple[ComputeOp, ComputeOp]]:
    """Data-dependency edges between compute ops of the pipeline."""
    edges = []
    c = schedule.num_stages
    for mb in range(schedule.num_microbatches):
        for j in range(c - 1):
            edges.append(
                (ComputeOp(mb, j, OpType.FORWARD), ComputeOp(mb, j + 1, OpType.FORWARD))
            )
            edges.append(
                (ComputeOp(mb, j + 1, OpType.BACKWARD), ComputeOp(mb, j, OpType.BACKWARD))
            )
        edges.append(
            (ComputeOp(mb, c - 1, OpType.FORWARD), ComputeOp(mb, c - 1, OpType.BACKWARD))
        )
    return edges


def validate_schedule(schedule: PipelineSchedule) -> None:
    """Validate ``schedule``; raises :class:`ScheduleValidationError` if invalid."""
    c = schedule.num_stages
    m = schedule.num_microbatches
    if c < 1:
        raise ScheduleValidationError("schedule has no stages")

    # Completeness and per-stage ordering.
    for stage_schedule in schedule.stages:
        forwards = stage_schedule.forward_positions()
        backwards = stage_schedule.backward_positions()
        expected = set(range(m))
        if set(forwards) != expected:
            raise ScheduleValidationError(
                f"stage {stage_schedule.stage} forward passes cover {sorted(forwards)} "
                f"instead of all {m} micro-batches"
            )
        if set(backwards) != expected:
            raise ScheduleValidationError(
                f"stage {stage_schedule.stage} backward passes cover {sorted(backwards)} "
                f"instead of all {m} micro-batches"
            )
        if len(stage_schedule.ops) != 2 * m:
            raise ScheduleValidationError(
                f"stage {stage_schedule.stage} has {len(stage_schedule.ops)} ops, expected {2 * m}"
            )
        for mb in range(m):
            if forwards[mb] > backwards[mb]:
                raise ScheduleValidationError(
                    f"stage {stage_schedule.stage} schedules backward of micro-batch {mb} "
                    "before its forward"
                )

    # Deadlock-freedom of the combined order (dependencies + device order):
    # topologically sort the union graph.
    order_edges: list[tuple[ComputeOp, ComputeOp]] = []
    for stage_schedule in schedule.stages:
        for previous, current in zip(stage_schedule.ops, stage_schedule.ops[1:]):
            order_edges.append((previous, current))
    edges = _dependency_edges(schedule) + order_edges

    successors: dict[ComputeOp, list[ComputeOp]] = {}
    indegree: dict[ComputeOp, int] = {}
    for op in schedule.all_ops():
        successors.setdefault(op, [])
        indegree.setdefault(op, 0)
    for src, dst in edges:
        successors.setdefault(src, []).append(dst)
        indegree.setdefault(dst, indegree.get(dst, 0))
        indegree[dst] += 1
        indegree.setdefault(src, indegree.get(src, 0))

    ready = [op for op, degree in indegree.items() if degree == 0]
    visited = 0
    while ready:
        op = ready.pop()
        visited += 1
        for nxt in successors.get(op, []):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    if visited != len(indegree):
        raise ScheduleValidationError(
            "schedule order conflicts with pipeline dependencies (cycle detected): "
            "execution would deadlock"
        )
