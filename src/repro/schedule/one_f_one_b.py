"""The 1F1B pipeline schedule (PipeDream-flush / Megatron-LM default).

Stage ``j`` of ``c`` stages (0-based) performs ``c - 1 - j`` warm-up forward
passes, then alternates one forward and one backward pass until all forwards
are issued, and finally drains the remaining backward passes.  The schedule
keeps at most ``c - j`` micro-batch activations alive on stage ``j``, which
is its main attraction; its weakness under dynamic micro-batching is the
zero safety stock in the steady state (paper §5, Fig. 11a).
"""

from __future__ import annotations

from repro.schedule.events import OpType, PipelineSchedule, StageSchedule


def one_f_one_b_schedule(num_stages: int, num_microbatches: int) -> PipelineSchedule:
    """Construct the 1F1B schedule for the given pipeline dimensions.

    Args:
        num_stages: Number of pipeline stages (devices).
        num_microbatches: Number of micro-batches in the iteration.

    Returns:
        A :class:`~repro.schedule.events.PipelineSchedule` where every stage
        executes every micro-batch's forward and backward exactly once.
    """
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    if num_microbatches < 1:
        raise ValueError(f"num_microbatches must be >= 1, got {num_microbatches}")

    stages = []
    for stage in range(num_stages):
        schedule = StageSchedule(stage=stage)
        num_warmup = min(num_stages - 1 - stage, num_microbatches)
        next_forward = 0
        next_backward = 0
        # Warm-up: forwards only.
        for _ in range(num_warmup):
            schedule.append(next_forward, OpType.FORWARD)
            next_forward += 1
        # Steady state: alternate 1 forward, 1 backward.
        while next_forward < num_microbatches:
            schedule.append(next_forward, OpType.FORWARD)
            next_forward += 1
            schedule.append(next_backward, OpType.BACKWARD)
            next_backward += 1
        # Cool-down: drain the remaining backwards.
        while next_backward < num_microbatches:
            schedule.append(next_backward, OpType.BACKWARD)
            next_backward += 1
        stages.append(schedule)
    return PipelineSchedule(stages=stages, num_microbatches=num_microbatches, name="1f1b")
