"""Cyclic (adaptive) scheduling — Algorithm 1 of the paper.

Under cyclic scheduling each device tries to execute exactly one backward
and one forward pass per cycle, drawing from per-device buffers of *ready*
ops.  Unlike 1F1B, which hard-codes the execution order, the cyclic
formulation exposes two control knobs:

* the **injection order** of micro-batches into the first stage's forward
  buffer, and
* a per-device **memory limit** that makes a device skip forward passes
  (delaying the injection/progress of micro-batches) until backward passes
  have freed enough activation memory — this is the "memory-aware" part of
  DynaPipe's adaptive schedule.

This module implements the core algorithm; the planner-facing wrapper that
derives activation sizes and memory limits from the cost model lives in
:mod:`repro.core.adaptive_schedule`.

The slot-level core, :func:`cyclic_stage_sequences`, produces the per-stage
op *order* as plain encoded integers without building
:class:`~repro.schedule.events.ComputeOp` objects.  :func:`cyclic_schedule`
wraps it into a full :class:`~repro.schedule.events.PipelineSchedule`; the
incremental order search (:mod:`repro.simulator.incremental`) consumes the
encoded form directly, so both paths share one implementation by
construction.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.schedule.events import OpType, PipelineSchedule, StageSchedule


class ScheduleDeadlockError(RuntimeError):
    """Raised when no device can make progress (e.g. a single micro-batch's
    activation exceeds a device's memory limit)."""


def cyclic_stage_sequences(
    num_stages: int,
    activation_bytes: Sequence[Sequence[float]],
    memory_limits: Sequence[float] | None = None,
    injection_order: Sequence[int] | None = None,
) -> list[list[int]]:
    """Run Algorithm 1 and return the per-stage op order in encoded form.

    Args:
        num_stages: Number of pipeline stages ``C``.
        activation_bytes: ``activation_bytes[i][j]`` is the activation memory
            micro-batch ``i`` pins on stage ``j`` between its forward and
            backward pass.  The outer length defines the number of
            micro-batches ``M``.
        memory_limits: Per-stage activation memory limits ``l_j``.  ``None``
            disables the memory check.
        injection_order: Order in which micro-batches enter the first stage's
            forward buffer.  Defaults to ``0..M-1``.

    Returns:
        One list per stage of encoded ops ``(microbatch << 1) | is_forward``,
        in execution order.

    Raises:
        ScheduleDeadlockError: If a micro-batch can never be scheduled
            because its activation alone exceeds a stage's memory limit.
    """
    num_microbatches = len(activation_bytes)
    if injection_order is None:
        injection_order = range(num_microbatches)

    # Per-device ready buffers of forward and backward ops (micro-batch ids).
    forward_ready: list[deque[int]] = [deque() for _ in range(num_stages)]
    backward_ready: list[deque[int]] = [deque() for _ in range(num_stages)]
    forward_ready[0].extend(injection_order)
    current_memory = [0.0] * num_stages

    sequences: list[list[int]] = [[] for _ in range(num_stages)]
    remaining_ops = 2 * num_microbatches * num_stages

    while any(forward_ready[j] or backward_ready[j] for j in range(num_stages)):
        newly_forward: list[list[int]] = [[] for _ in range(num_stages)]
        newly_backward: list[list[int]] = [[] for _ in range(num_stages)]
        progressed = False

        for j in range(num_stages):
            # Schedule one backward op if available (frees memory first).
            if backward_ready[j]:
                mb = backward_ready[j].popleft()
                current_memory[j] -= activation_bytes[mb][j]
                sequences[j].append(mb << 1)
                remaining_ops -= 1
                progressed = True
                if j > 0:
                    newly_backward[j - 1].append(mb)

            # Schedule one forward op if available and memory permits.
            if forward_ready[j]:
                mb = forward_ready[j].popleft()
                needed = activation_bytes[mb][j]
                limit = memory_limits[j] if memory_limits is not None else float("inf")
                if current_memory[j] + needed <= limit:
                    current_memory[j] += needed
                    sequences[j].append((mb << 1) | 1)
                    remaining_ops -= 1
                    progressed = True
                    if j < num_stages - 1:
                        newly_forward[j + 1].append(mb)
                    else:
                        newly_backward[j].append(mb)
                else:
                    # Put it back at the head of the buffer and retry later.
                    forward_ready[j].appendleft(mb)

        unlocked = any(newly_forward[j] or newly_backward[j] for j in range(num_stages))
        if not progressed and not unlocked:
            raise ScheduleDeadlockError(
                "cyclic scheduling cannot make progress: a micro-batch's activation "
                "memory exceeds a stage's memory limit"
            )

        for j in range(num_stages):
            forward_ready[j].extend(newly_forward[j])
            backward_ready[j].extend(newly_backward[j])

    assert remaining_ops == 0, "cyclic scheduling terminated with unscheduled ops"
    return sequences


def cyclic_schedule(
    num_stages: int,
    activation_bytes: Sequence[Sequence[float]],
    memory_limits: Sequence[float] | None = None,
    injection_order: Sequence[int] | None = None,
    name: str = "adaptive",
) -> PipelineSchedule:
    """Run Algorithm 1 and return the resulting per-stage op order.

    Args:
        num_stages: Number of pipeline stages ``C``.
        activation_bytes: ``activation_bytes[i][j]`` is the activation memory
            micro-batch ``i`` pins on stage ``j`` between its forward and
            backward pass.  The outer length defines the number of
            micro-batches ``M``.
        memory_limits: Per-stage activation memory limits ``l_j``.  ``None``
            disables the memory check (plain cyclic scheduling, equivalent to
            injecting micro-batches as fast as dependencies allow).
        injection_order: Order in which micro-batches enter the first stage's
            forward buffer.  Defaults to ``0..M-1``.
        name: Name recorded on the returned schedule.

    Returns:
        A :class:`~repro.schedule.events.PipelineSchedule`.

    Raises:
        ScheduleDeadlockError: If a micro-batch can never be scheduled
            because its activation alone exceeds a stage's memory limit.
    """
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    num_microbatches = len(activation_bytes)
    if num_microbatches < 1:
        raise ValueError("at least one micro-batch is required")
    for i, row in enumerate(activation_bytes):
        if len(row) != num_stages:
            raise ValueError(
                f"activation_bytes[{i}] has {len(row)} entries, expected {num_stages}"
            )
    if injection_order is not None and sorted(injection_order) != list(
        range(num_microbatches)
    ):
        raise ValueError("injection_order must be a permutation of the micro-batch indices")
    if memory_limits is not None and len(memory_limits) != num_stages:
        raise ValueError(
            f"memory_limits has {len(memory_limits)} entries, expected {num_stages}"
        )

    sequences = cyclic_stage_sequences(
        num_stages, activation_bytes, memory_limits, injection_order
    )
    stages = [StageSchedule(stage=j) for j in range(num_stages)]
    for j, sequence in enumerate(sequences):
        for encoded in sequence:
            stages[j].append(
                encoded >> 1, OpType.FORWARD if encoded & 1 else OpType.BACKWARD
            )
    return PipelineSchedule(
        stages=stages, num_microbatches=num_microbatches, name=name
    )
