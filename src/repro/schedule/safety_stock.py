"""Safety-stock analysis (paper §5).

The *safety stock* of a device at a point in time is the number of compute
ops that are already ready for execution on that device (their cross-stage
dependencies are satisfied) but have not started yet.  A device whose safety
stock hits zero will idle the moment its current op finishes if its upstream
neighbour is late — which is exactly what happens to 1F1B in its steady
state under dynamic micro-batching, and what the adaptive schedule's early
injection fixes.

The profile is computed from a schedule plus a simulated timeline (op start
and end times); the heavy lifting of producing the timeline is the execution
simulator's job, so this module only needs plain dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedule.events import ComputeOp, OpType, PipelineSchedule


@dataclass(frozen=True)
class SafetyStockProfile:
    """Safety-stock observations for one pipeline execution.

    Attributes:
        per_stage_samples: For each stage, the list of safety-stock values
            observed each time the stage started executing an op (excluding
            the very first op of the stage).
        per_stage_minimum: Minimum observed safety stock per stage during the
            steady state.
        per_stage_mean: Mean observed safety stock per stage.
    """

    per_stage_samples: list[list[int]]
    per_stage_minimum: list[int]
    per_stage_mean: list[float]


def _op_dependencies(op: ComputeOp, num_stages: int) -> list[ComputeOp]:
    """Cross-stage dependencies of ``op`` (excluding same-device ordering)."""
    deps = []
    if op.op_type is OpType.FORWARD:
        if op.stage > 0:
            deps.append(ComputeOp(op.microbatch, op.stage - 1, OpType.FORWARD))
    else:
        if op.stage < num_stages - 1:
            deps.append(ComputeOp(op.microbatch, op.stage + 1, OpType.BACKWARD))
        else:
            deps.append(ComputeOp(op.microbatch, op.stage, OpType.FORWARD))
    return deps


def safety_stock_profile(
    schedule: PipelineSchedule,
    op_times: dict[ComputeOp, tuple[float, float]],
) -> SafetyStockProfile:
    """Compute the safety-stock profile of a simulated execution.

    Args:
        schedule: The pipeline schedule that was executed.
        op_times: Mapping from compute op to its simulated (start, end) time.

    Returns:
        A :class:`SafetyStockProfile` with per-stage samples and summaries.
    """
    num_stages = schedule.num_stages
    per_stage_samples: list[list[int]] = []
    for stage_schedule in schedule.stages:
        samples: list[int] = []
        ops = stage_schedule.ops
        for position, op in enumerate(ops):
            if position == 0:
                continue
            start_time = op_times[op][0]
            # Count *strictly later* ops on this stage whose dependencies had
            # already completed when this op started — they were sitting in
            # the device's ready buffer at that moment.  The op being started
            # itself is excluded: an op that becomes ready exactly when the
            # device needs it corresponds to a zero safety stock (the 1F1B
            # steady state of paper §5).
            stock = 0
            for later in ops[position + 1 :]:
                deps = _op_dependencies(later, num_stages)
                if all(op_times[d][1] <= start_time + 1e-9 for d in deps if d in op_times):
                    if all(d in op_times for d in deps):
                        stock += 1
            samples.append(stock)
        per_stage_samples.append(samples)

    minimums = [min(samples) if samples else 0 for samples in per_stage_samples]
    means = [
        (sum(samples) / len(samples)) if samples else 0.0 for samples in per_stage_samples
    ]
    return SafetyStockProfile(
        per_stage_samples=per_stage_samples,
        per_stage_minimum=minimums,
        per_stage_mean=means,
    )
