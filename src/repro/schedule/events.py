"""Schedule representation.

A schedule is a per-stage ordered list of compute operations.  Only the
*order* is fixed here; timing is resolved by the execution simulator, and
communication ordering is derived afterwards by the communication planner.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class OpType(str, enum.Enum):
    """Type of a compute operation in a pipeline schedule."""

    FORWARD = "F"
    BACKWARD = "B"


@dataclass(frozen=True, order=True)
class ComputeOp:
    """One forward or backward pass of a micro-batch on a stage.

    Attributes:
        microbatch: Micro-batch index within the iteration.
        stage: Pipeline stage executing the op.
        op_type: Forward or backward.
    """

    microbatch: int
    stage: int
    op_type: OpType

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{self.op_type.value}{self.microbatch}@{self.stage}"


@dataclass
class StageSchedule:
    """Ordered list of compute ops executed by one stage."""

    stage: int
    ops: list[ComputeOp] = field(default_factory=list)

    def append(self, microbatch: int, op_type: OpType) -> None:
        """Append an op for ``microbatch`` of ``op_type`` to this stage."""
        self.ops.append(ComputeOp(microbatch=microbatch, stage=self.stage, op_type=op_type))

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[ComputeOp]:
        return iter(self.ops)

    def forward_positions(self) -> dict[int, int]:
        """Map micro-batch index to the position of its forward op."""
        return {
            op.microbatch: position
            for position, op in enumerate(self.ops)
            if op.op_type is OpType.FORWARD
        }

    def backward_positions(self) -> dict[int, int]:
        """Map micro-batch index to the position of its backward op."""
        return {
            op.microbatch: position
            for position, op in enumerate(self.ops)
            if op.op_type is OpType.BACKWARD
        }


@dataclass
class PipelineSchedule:
    """A complete schedule: one :class:`StageSchedule` per pipeline stage.

    Attributes:
        stages: The per-stage schedules, indexed by stage.
        num_microbatches: Number of micro-batches in the iteration.
        name: Schedule family name (``"1f1b"``, ``"adaptive"``, ...), used in
            reports.
    """

    stages: list[StageSchedule]
    num_microbatches: int
    name: str = "unnamed"

    @property
    def num_stages(self) -> int:
        """Number of pipeline stages."""
        return len(self.stages)

    def stage(self, index: int) -> StageSchedule:
        """The schedule of stage ``index``."""
        return self.stages[index]

    def all_ops(self) -> Iterator[ComputeOp]:
        """Iterate over every op of every stage (stage-major order)."""
        for stage_schedule in self.stages:
            yield from stage_schedule.ops

    def total_ops(self) -> int:
        """Total number of compute ops across all stages."""
        return sum(len(stage) for stage in self.stages)

    def injection_order(self) -> list[int]:
        """Order in which micro-batches are injected into the pipeline.

        Defined as the order of forward passes on the first stage, which is
        the knob the adaptive schedule controls (paper §5).
        """
        if not self.stages:
            return []
        return [
            op.microbatch for op in self.stages[0].ops if op.op_type is OpType.FORWARD
        ]
