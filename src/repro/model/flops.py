"""Analytic FLOP and byte counts for Transformer layers.

The counts follow the standard decomposition of a Transformer layer into
dense projections (linear in sequence length) and attention score/context
matmuls (quadratic in sequence length).  The quadratic term is what makes
packing expensive at long maximum sequence lengths (paper Fig. 3/4) and is
therefore the part that must be modelled faithfully.

All functions take the number of tokens actually present in the micro-batch
tensor (i.e. *after* padding), because the hardware processes padding tokens
like any other — that is exactly the waste the paper is eliminating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.config import ModelConfig
from repro.utils.validation import check_non_negative, check_positive

#: Bytes per element for the mixed-precision activations/weights (fp16).
DTYPE_BYTES = 2


@dataclass(frozen=True)
class LayerFlops:
    """FLOPs and HBM traffic of one Transformer layer for one micro-batch.

    Attributes:
        flops: Total floating point operations for the forward pass.
        bytes_moved: Approximate bytes read + written from device memory for
            the forward pass.
        kernels: Number of kernel launches (used for fixed overheads).
    """

    flops: float
    bytes_moved: float
    kernels: int

    def scaled(self, factor: float) -> "LayerFlops":
        """Return a copy with flops and bytes scaled by ``factor``.

        The backward pass is conventionally modelled as 2× the forward
        FLOPs; recomputation adds another forward.
        """
        return LayerFlops(self.flops * factor, self.bytes_moved * factor, self.kernels)

    def __add__(self, other: "LayerFlops") -> "LayerFlops":
        return LayerFlops(
            self.flops + other.flops,
            self.bytes_moved + other.bytes_moved,
            self.kernels + other.kernels,
        )


def _attention_flops(
    config: ModelConfig, batch: int, query_len: int, kv_len: int
) -> tuple[float, float, int]:
    """FLOPs / bytes / kernels of one (self or cross) attention block."""
    h = config.hidden_size
    p = config.attention_projection_size
    # Q, K, V projections + output projection: 4 matmuls of [b*q, h] x [h, p].
    proj_flops = 2.0 * batch * (query_len * h * p * 2 + kv_len * h * p * 2)
    # Attention scores and context: 2 matmuls of [b, heads, q, d] x [b, heads, d, kv].
    score_flops = 2.0 * batch * config.num_heads * query_len * kv_len * config.kv_channels * 2
    flops = proj_flops + score_flops
    act_bytes = DTYPE_BYTES * batch * (
        query_len * h * 4 + kv_len * p * 2 + config.num_heads * query_len * kv_len * 2
    )
    weight_bytes = DTYPE_BYTES * 4 * h * p
    return flops, act_bytes + weight_bytes, 6


def _ffn_flops(config: ModelConfig, batch: int, seq_len: int) -> tuple[float, float, int]:
    """FLOPs / bytes / kernels of the position-wise feed-forward block."""
    h = config.hidden_size
    f = config.ffn_hidden_size
    flops = 2.0 * batch * seq_len * h * f * 2
    act_bytes = DTYPE_BYTES * batch * seq_len * (h * 2 + f * 2)
    weight_bytes = DTYPE_BYTES * 2 * h * f
    return flops, act_bytes + weight_bytes, 3


def encoder_layer_flops(config: ModelConfig, batch: int, seq_len: int) -> LayerFlops:
    """Forward-pass cost of one encoder (or GPT decoder-only) layer.

    For GPT the "encoder layer" terminology is a slight abuse: a decoder-only
    layer has the same structure (self-attention + FFN); causal masking does
    not change the dense FLOP count in standard implementations.
    """
    check_positive("batch", batch)
    check_non_negative("seq_len", seq_len)
    if seq_len == 0:
        return LayerFlops(0.0, 0.0, 0)
    attn_f, attn_b, attn_k = _attention_flops(config, batch, seq_len, seq_len)
    ffn_f, ffn_b, ffn_k = _ffn_flops(config, batch, seq_len)
    return LayerFlops(attn_f + ffn_f, attn_b + ffn_b, attn_k + ffn_k)


def decoder_layer_flops(
    config: ModelConfig, batch: int, target_len: int, source_len: int
) -> LayerFlops:
    """Forward-pass cost of one encoder-decoder (T5) decoder layer.

    A T5 decoder layer has self-attention over the target sequence,
    cross-attention from target queries to encoder keys/values, and an FFN.
    """
    check_positive("batch", batch)
    check_non_negative("target_len", target_len)
    check_non_negative("source_len", source_len)
    if target_len == 0:
        return LayerFlops(0.0, 0.0, 0)
    self_f, self_b, self_k = _attention_flops(config, batch, target_len, target_len)
    cross_f, cross_b, cross_k = _attention_flops(config, batch, target_len, source_len)
    ffn_f, ffn_b, ffn_k = _ffn_flops(config, batch, target_len)
    return LayerFlops(
        self_f + cross_f + ffn_f,
        self_b + cross_b + ffn_b,
        self_k + cross_k + ffn_k,
    )


def embedding_flops(config: ModelConfig, batch: int, seq_len: int) -> LayerFlops:
    """Cost of the output projection to the vocabulary (logits matmul)."""
    check_positive("batch", batch)
    check_non_negative("seq_len", seq_len)
    flops = 2.0 * batch * seq_len * config.hidden_size * config.vocab_size
    nbytes = DTYPE_BYTES * (
        batch * seq_len * (config.hidden_size + config.vocab_size)
        + config.hidden_size * config.vocab_size
    )
    return LayerFlops(flops, nbytes, 1)
