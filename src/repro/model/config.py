"""Model configurations (paper Table 1).

The paper evaluates GPT (decoder-only) at 3.35 B / 6.7 B / 13 B / 29 B
parameters and T5 (encoder-decoder) at 5.5 B / 11 B / 22 B / 44 B, paired
with cluster sizes of 4 / 8 / 16 / 32 GPUs.  The exact layer counts, hidden
sizes, head counts, KV channels and FFN sizes from Table 1 are reproduced
here, together with a parameter-count estimator used to verify them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.validation import check_positive


class ModelArch(str, enum.Enum):
    """Transformer architecture family."""

    GPT = "gpt"
    """Decoder-only architecture (GPT-3 style)."""

    T5 = "t5"
    """Encoder-decoder architecture (T5 style)."""


@dataclass(frozen=True)
class ModelConfig:
    """Static description of a Transformer model.

    Attributes:
        name: Human readable name (e.g. ``"gpt-6.7b"``).
        arch: Architecture family.
        num_layers: For GPT, the number of decoder layers.  For T5, the
            number of layers in *each* of the encoder and decoder (matching
            the paper's Table 1 note).
        hidden_size: Model (embedding) dimension.
        num_heads: Number of attention heads.
        kv_channels: Per-head key/value projection width.
        ffn_hidden_size: Feed-forward inner dimension.
        vocab_size: Vocabulary size (used for embedding parameters and the
            output projection cost).
    """

    name: str
    arch: ModelArch
    num_layers: int
    hidden_size: int
    num_heads: int
    kv_channels: int
    ffn_hidden_size: int
    vocab_size: int = 32768

    def __post_init__(self) -> None:
        check_positive("num_layers", self.num_layers)
        check_positive("hidden_size", self.hidden_size)
        check_positive("num_heads", self.num_heads)
        check_positive("kv_channels", self.kv_channels)
        check_positive("ffn_hidden_size", self.ffn_hidden_size)
        check_positive("vocab_size", self.vocab_size)

    @property
    def attention_projection_size(self) -> int:
        """Total width of the Q/K/V projections (heads × kv_channels)."""
        return self.num_heads * self.kv_channels

    @property
    def is_encoder_decoder(self) -> bool:
        """Whether the model has a separate encoder and decoder stack."""
        return self.arch is ModelArch.T5

    @property
    def total_layer_count(self) -> int:
        """Total number of Transformer layers across all stacks."""
        if self.is_encoder_decoder:
            return 2 * self.num_layers
        return self.num_layers

    def parameter_count(self, include_embedding: bool = True) -> int:
        """Approximate total parameter count.

        Per layer: attention has Q, K, V and output projections
        (``4 · h · p`` where ``p`` is the attention projection size; for T5
        decoder layers the cross-attention adds another ``4 · h · p``), and
        the FFN contributes ``2 · h · f``.  Embeddings add ``v · h``.
        """
        h = self.hidden_size
        p = self.attention_projection_size
        f = self.ffn_hidden_size
        self_attn = 4 * h * p
        ffn = 2 * h * f
        if self.is_encoder_decoder:
            encoder_layer = self_attn + ffn
            decoder_layer = self_attn + 4 * h * p + ffn
            params = self.num_layers * (encoder_layer + decoder_layer)
        else:
            params = self.num_layers * (self_attn + ffn)
        if include_embedding:
            params += self.vocab_size * h
        return params


def _gpt(name: str, layers: int, hidden: int, heads: int, ffn: int) -> ModelConfig:
    return ModelConfig(
        name=name,
        arch=ModelArch.GPT,
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        kv_channels=128,
        ffn_hidden_size=ffn,
    )


def _t5(name: str, layers: int) -> ModelConfig:
    return ModelConfig(
        name=name,
        arch=ModelArch.T5,
        num_layers=layers,
        hidden_size=1024,
        num_heads=128,
        kv_channels=128,
        ffn_hidden_size=65536,
    )


#: GPT configurations from Table 1, keyed by the cluster size they pair with.
GPT_CONFIGS: dict[int, ModelConfig] = {
    4: _gpt("gpt-3.35b", layers=16, hidden=4096, heads=32, ffn=16384),
    8: _gpt("gpt-6.7b", layers=32, hidden=4096, heads=32, ffn=16384),
    16: _gpt("gpt-13b", layers=40, hidden=5140, heads=40, ffn=20560),
    32: _gpt("gpt-29b", layers=16, hidden=12288, heads=96, ffn=49152),
}

#: T5 configurations from Table 1, keyed by the cluster size they pair with.
T5_CONFIGS: dict[int, ModelConfig] = {
    4: _t5("t5-5.5b", layers=12),
    8: _t5("t5-11b", layers=24),
    16: _t5("t5-22b", layers=48),
    32: _t5("t5-44b", layers=96),
}

#: Paper-reported parameter counts in billions, for verification (Table 1).
PAPER_PARAM_BILLIONS: dict[str, float] = {
    "gpt-3.35b": 3.35,
    "gpt-6.7b": 6.7,
    "gpt-13b": 13.0,
    "gpt-29b": 29.0,
    "t5-5.5b": 5.5,
    "t5-11b": 11.0,
    "t5-22b": 22.0,
    "t5-44b": 44.0,
}


def get_model_config(arch: ModelArch | str, num_gpus: int) -> ModelConfig:
    """Return the Table-1 configuration of ``arch`` paired with ``num_gpus``.

    Raises ``KeyError`` for cluster sizes not evaluated in the paper.
    """
    arch = ModelArch(arch)
    table = GPT_CONFIGS if arch is ModelArch.GPT else T5_CONFIGS
    if num_gpus not in table:
        raise KeyError(
            f"no Table-1 configuration for {arch.value} on {num_gpus} GPUs; "
            f"available cluster sizes: {sorted(table)}"
        )
    return table[num_gpus]
