"""Transformer model substrate.

Provides the model configurations evaluated in the paper (Table 1), analytic
FLOP and memory formulas per Transformer layer, and a layer-level structural
description of encoder-only (GPT-style decoder-only, in the paper's naming)
and encoder-decoder (T5-style) models used to assign layers to pipeline
stages.
"""

from repro.model.config import (
    GPT_CONFIGS,
    T5_CONFIGS,
    ModelArch,
    ModelConfig,
    get_model_config,
)
from repro.model.flops import LayerFlops, decoder_layer_flops, encoder_layer_flops
from repro.model.memory import (
    ActivationComponents,
    RecomputeMode,
    activation_bytes_per_layer,
    activation_components,
    optimizer_state_bytes,
    parameter_bytes,
    static_stage_bytes,
    weight_gradient_bytes,
)
from repro.model.transformer import (
    LayerAssignment,
    MicroBatchShape,
    StageModel,
    assign_layers,
    build_stage_models,
)

__all__ = [
    "ModelArch",
    "ModelConfig",
    "GPT_CONFIGS",
    "T5_CONFIGS",
    "get_model_config",
    "LayerFlops",
    "encoder_layer_flops",
    "decoder_layer_flops",
    "parameter_bytes",
    "activation_bytes_per_layer",
    "activation_components",
    "ActivationComponents",
    "RecomputeMode",
    "optimizer_state_bytes",
    "static_stage_bytes",
    "weight_gradient_bytes",
    "LayerAssignment",
    "MicroBatchShape",
    "StageModel",
    "assign_layers",
    "build_stage_models",
]
