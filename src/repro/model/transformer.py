"""Layer-level model structure and pipeline stage assignment.

A pipeline stage owns a contiguous slice of the model's Transformer layers.
For GPT all layers are decoder-only layers over a single sequence; for T5
the encoder stack is followed by the decoder stack, so early stages hold
encoder layers (processing the input sequence) and late stages hold decoder
layers (processing the target sequence, cross-attending to the encoder
output).  This split is why the paper's DP algorithm considers *both*
sequence lengths when constructing T5 micro-batches.

A :class:`StageModel` converts a micro-batch shape (batch size, encoder
sequence length, decoder sequence length) into forward/backward compute
descriptions and activation memory for that stage, using the analytic
formulas in :mod:`repro.model.flops` / :mod:`repro.model.memory` and a
:class:`~repro.cluster.device.SimulatedGPU` to obtain time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.device import SimulatedGPU
from repro.cluster.network import NetworkModel
from repro.model.config import ModelConfig
from repro.model.flops import (
    DTYPE_BYTES,
    LayerFlops,
    decoder_layer_flops,
    encoder_layer_flops,
)
from repro.model.memory import (
    RecomputeMode,
    activation_bytes_per_layer,
    static_stage_bytes,
)


class LayerKind(str, enum.Enum):
    """Which stack a Transformer layer belongs to."""

    ENCODER = "encoder"
    DECODER = "decoder"


@dataclass(frozen=True)
class LayerAssignment:
    """The slice of model layers owned by one pipeline stage.

    Attributes:
        stage: Pipeline stage index (0-based).
        encoder_layers: Number of encoder layers on this stage.
        decoder_layers: Number of decoder (or GPT decoder-only) layers.
        has_output_projection: Whether the final vocabulary projection runs
            on this stage (always the last stage).
    """

    stage: int
    encoder_layers: int
    decoder_layers: int
    has_output_projection: bool

    @property
    def total_layers(self) -> int:
        """Total Transformer layers on this stage."""
        return self.encoder_layers + self.decoder_layers


def assign_layers(config: ModelConfig, num_stages: int) -> list[LayerAssignment]:
    """Split the model's layers into ``num_stages`` contiguous slices.

    Layers are balanced as evenly as possible; remainders go to the earliest
    stages (matching Megatron-LM's behaviour).  For T5 the encoder stack
    precedes the decoder stack in the flattened layer order.
    """
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    total = config.total_layer_count
    if num_stages > total:
        raise ValueError(
            f"cannot split {total} layers of {config.name} into {num_stages} pipeline stages"
        )
    base, remainder = divmod(total, num_stages)
    counts = [base + (1 if stage < remainder else 0) for stage in range(num_stages)]

    encoder_total = config.num_layers if config.is_encoder_decoder else 0
    assignments: list[LayerAssignment] = []
    consumed = 0
    for stage, count in enumerate(counts):
        enc = max(0, min(encoder_total - consumed, count))
        dec = count - enc
        assignments.append(
            LayerAssignment(
                stage=stage,
                encoder_layers=enc,
                decoder_layers=dec,
                has_output_projection=(stage == num_stages - 1),
            )
        )
        consumed += count
    return assignments


@dataclass(frozen=True)
class MicroBatchShape:
    """Shape of a padded micro-batch tensor.

    Attributes:
        batch_size: Number of samples in the micro-batch.
        enc_seq_len: Padded input (encoder) sequence length.  For GPT this is
            the full (input + target) sequence length.
        dec_seq_len: Padded target (decoder) sequence length; 0 for GPT.
    """

    batch_size: int
    enc_seq_len: int
    dec_seq_len: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.enc_seq_len < 0 or self.dec_seq_len < 0:
            raise ValueError("sequence lengths must be non-negative")

    @property
    def total_tokens(self) -> int:
        """Padded token count of the micro-batch (both sequences)."""
        return self.batch_size * (self.enc_seq_len + self.dec_seq_len)


class StageModel:
    """Compute/memory behaviour of one pipeline stage of a model replica."""

    def __init__(
        self,
        config: ModelConfig,
        assignment: LayerAssignment,
        tensor_parallel: int = 1,
        zero_shards: int = 1,
    ) -> None:
        if tensor_parallel < 1:
            raise ValueError(f"tensor_parallel must be >= 1, got {tensor_parallel}")
        self.config = config
        self.assignment = assignment
        self.tensor_parallel = tensor_parallel
        self.zero_shards = zero_shards

    # ------------------------------------------------------------------ FLOPs

    def forward_flops(self, shape: MicroBatchShape) -> LayerFlops:
        """Aggregate forward-pass cost of this stage for one micro-batch."""
        total = LayerFlops(0.0, 0.0, 0)
        if self.assignment.encoder_layers and shape.enc_seq_len:
            per = encoder_layer_flops(self.config, shape.batch_size, shape.enc_seq_len)
            total = total + per.scaled(self.assignment.encoder_layers)
        if self.assignment.decoder_layers:
            if self.config.is_encoder_decoder:
                if shape.dec_seq_len:
                    per = decoder_layer_flops(
                        self.config, shape.batch_size, shape.dec_seq_len, shape.enc_seq_len
                    )
                    total = total + per.scaled(self.assignment.decoder_layers)
            else:
                per = encoder_layer_flops(self.config, shape.batch_size, shape.enc_seq_len)
                total = total + per.scaled(self.assignment.decoder_layers)
        return LayerFlops(
            total.flops / self.tensor_parallel,
            total.bytes_moved / self.tensor_parallel,
            total.kernels,
        )

    # ------------------------------------------------------------------ time

    def forward_time_ms(self, gpu: SimulatedGPU, shape: MicroBatchShape) -> float:
        """Forward-pass time of this stage for one micro-batch."""
        cost = self.forward_flops(shape)
        time = gpu.kernel_time_ms(cost.flops, cost.bytes_moved, max(cost.kernels, 1))
        return time + self._tensor_parallel_comm_ms(shape)

    def backward_time_ms(
        self,
        gpu: SimulatedGPU,
        shape: MicroBatchShape,
        recompute: RecomputeMode = RecomputeMode.NONE,
    ) -> float:
        """Backward-pass time; recomputation re-runs (part of) the forward."""
        cost = self.forward_flops(shape)
        scaled = cost.scaled(recompute.backward_flop_factor)
        time = gpu.kernel_time_ms(scaled.flops, scaled.bytes_moved, max(cost.kernels, 1))
        return time + self._tensor_parallel_comm_ms(shape)

    def _tensor_parallel_comm_ms(self, shape: MicroBatchShape) -> float:
        """Per-micro-batch tensor-parallel all-reduce cost on this stage.

        Each Transformer layer performs two all-reduces of the layer
        activation per pass under Megatron-style tensor parallelism.
        """
        if self.tensor_parallel == 1:
            return 0.0
        network = NetworkModel()
        h = self.config.hidden_size
        total = 0.0
        if self.assignment.encoder_layers and shape.enc_seq_len:
            nbytes = DTYPE_BYTES * shape.batch_size * shape.enc_seq_len * h
            total += 2 * self.assignment.encoder_layers * network.allreduce_time_ms(
                nbytes, self.tensor_parallel, same_node=True
            )
        dec_len = shape.dec_seq_len if self.config.is_encoder_decoder else shape.enc_seq_len
        if self.assignment.decoder_layers and dec_len:
            nbytes = DTYPE_BYTES * shape.batch_size * dec_len * h
            total += 2 * self.assignment.decoder_layers * network.allreduce_time_ms(
                nbytes, self.tensor_parallel, same_node=True
            )
        return total

    # ------------------------------------------------------------------ memory

    def activation_bytes(
        self, shape: MicroBatchShape, recompute: RecomputeMode = RecomputeMode.NONE
    ) -> float:
        """Activation memory this stage must hold between the forward and
        backward pass of one micro-batch."""
        total = 0.0
        if self.assignment.encoder_layers and shape.enc_seq_len:
            total += self.assignment.encoder_layers * activation_bytes_per_layer(
                self.config,
                shape.batch_size,
                shape.enc_seq_len,
                recompute=recompute,
                tensor_parallel=self.tensor_parallel,
            )
        if self.assignment.decoder_layers:
            if self.config.is_encoder_decoder:
                if shape.dec_seq_len:
                    total += self.assignment.decoder_layers * activation_bytes_per_layer(
                        self.config,
                        shape.batch_size,
                        shape.dec_seq_len,
                        kv_len=shape.enc_seq_len,
                        recompute=recompute,
                        tensor_parallel=self.tensor_parallel,
                    )
            else:
                total += self.assignment.decoder_layers * activation_bytes_per_layer(
                    self.config,
                    shape.batch_size,
                    shape.enc_seq_len,
                    recompute=recompute,
                    tensor_parallel=self.tensor_parallel,
                )
        return total

    def static_bytes(self) -> float:
        """Static memory (parameters, gradients, optimizer state, workspace)."""
        return static_stage_bytes(
            self.config,
            max(self.assignment.total_layers, 1),
            tensor_parallel=self.tensor_parallel,
            zero_shards=self.zero_shards,
        )

    # ------------------------------------------------------------------ comm shapes

    def output_activation_bytes(self, shape: MicroBatchShape) -> float:
        """Bytes of the activation tensor this stage sends to the next stage.

        The boundary activation is ``batch × seq × hidden``; for T5 stages
        that still hold encoder layers the encoder output must also flow
        forward (the decoder cross-attends to it), so both tensors are sent.
        """
        h = self.config.hidden_size
        nbytes = DTYPE_BYTES * shape.batch_size * h
        if self.config.is_encoder_decoder:
            # Encoder output is forwarded until the decoder stages consume it.
            total = nbytes * shape.enc_seq_len
            if self.assignment.decoder_layers:
                total += nbytes * shape.dec_seq_len
            return total / self.tensor_parallel
        return nbytes * shape.enc_seq_len / self.tensor_parallel


def build_stage_models(
    config: ModelConfig,
    num_stages: int,
    tensor_parallel: int = 1,
    zero_shards: int = 1,
) -> list[StageModel]:
    """Build the per-stage models for a pipeline of ``num_stages`` stages."""
    assignments = assign_layers(config, num_stages)
    return [
        StageModel(config, a, tensor_parallel=tensor_parallel, zero_shards=zero_shards)
        for a in assignments
    ]
