"""Analytic memory model for Transformer training.

Three memory pools matter for the planner:

* **static memory** — parameters, gradients and optimizer state.  Constant
  across micro-batches; scaled down by tensor parallelism and (for optimizer
  state) by ZeRO sharding across data-parallel replicas.
* **activation memory** — per micro-batch, proportional to the number of
  tokens held on a stage and quadratic in sequence length for the attention
  score matrices (unless recomputation drops them).
* **workspace** — a small constant per device.

The per-micro-batch activation footprint is the quantity that DynaPipe's
memory-aware schedule (Alg. 1) tracks, and the cost-model accuracy figure
(Fig. 18b) compares its prediction against the simulated peak.

Recomputation (activation checkpointing, paper §7 "dynamic recomputation")
trades compute for memory.  Three modes are modelled, matching the choices
Megatron-LM exposes:

* :attr:`RecomputeMode.NONE` — store every intermediate activation.
* :attr:`RecomputeMode.SELECTIVE` — drop the quadratic attention-score
  matrices and recompute them in the backward pass.
* :attr:`RecomputeMode.FULL` — store only the layer-boundary activation and
  re-run the full forward during the backward pass.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.model.config import ModelConfig
from repro.model.flops import DTYPE_BYTES
from repro.utils.validation import check_non_negative, check_positive

#: fp32 master weights + fp32 momentum + fp32 variance for Adam, per parameter.
ADAM_STATE_BYTES_PER_PARAM = 12
#: fp16 gradient per parameter.
GRAD_BYTES_PER_PARAM = 2


class RecomputeMode(str, enum.Enum):
    """Activation checkpointing strategy for a training iteration."""

    NONE = "none"
    """No recomputation: all intermediate activations are stored."""

    SELECTIVE = "selective"
    """Recompute the attention score/softmax activations only."""

    FULL = "full"
    """Store only layer-boundary activations; recompute everything else."""

    @property
    def backward_flop_factor(self) -> float:
        """Backward-pass FLOPs as a multiple of the forward pass.

        Plain backward is ~2x the forward.  Selective recomputation re-runs
        roughly a third of the forward (the attention block); full
        recomputation re-runs the whole forward.
        """
        if self is RecomputeMode.NONE:
            return 2.0
        if self is RecomputeMode.SELECTIVE:
            return 2.35
        return 3.0


@dataclass(frozen=True)
class ActivationComponents:
    """Breakdown of one layer's activation memory, in bytes.

    Attributes:
        boundary: The layer input/output activation (always stored, or
            re-sent from the previous stage).
        attention_linear: Q/K/V projections and attention output held for
            the backward pass.
        attention_scores: The ``heads × query × key`` score / softmax
            matrices — the term quadratic in sequence length.
        ffn: Feed-forward intermediate activations.
    """

    boundary: float
    attention_linear: float
    attention_scores: float
    ffn: float

    def total(self, mode: RecomputeMode) -> float:
        """Bytes retained until the backward pass under ``mode``."""
        if mode is RecomputeMode.FULL:
            return self.boundary
        if mode is RecomputeMode.SELECTIVE:
            return self.boundary + self.attention_linear + self.ffn
        return self.boundary + self.attention_linear + self.attention_scores + self.ffn


def parameter_bytes(config: ModelConfig, layers: int, tensor_parallel: int = 1) -> float:
    """Bytes of fp16 parameters for ``layers`` Transformer layers of ``config``
    on one tensor-parallel shard."""
    check_positive("layers", layers)
    check_positive("tensor_parallel", tensor_parallel)
    per_layer = config.parameter_count(include_embedding=False) / config.total_layer_count
    return per_layer * layers * DTYPE_BYTES / tensor_parallel


def weight_gradient_bytes(config: ModelConfig, layers: int, tensor_parallel: int = 1) -> float:
    """Bytes of fp16 weight gradients for ``layers`` layers on one shard."""
    per_layer = config.parameter_count(include_embedding=False) / config.total_layer_count
    return per_layer * layers * GRAD_BYTES_PER_PARAM / tensor_parallel


def optimizer_state_bytes(
    config: ModelConfig,
    layers: int,
    tensor_parallel: int = 1,
    zero_shards: int = 1,
) -> float:
    """Bytes of Adam optimizer state for ``layers`` layers on one shard.

    ``zero_shards`` models ZeRO-1 sharding of optimizer state across data
    parallel replicas (the paper integrates DeepSpeed ZeRO).
    """
    check_positive("zero_shards", zero_shards)
    per_layer = config.parameter_count(include_embedding=False) / config.total_layer_count
    return per_layer * layers * ADAM_STATE_BYTES_PER_PARAM / (tensor_parallel * zero_shards)


def activation_components(
    config: ModelConfig,
    batch: int,
    seq_len: int,
    kv_len: int | None = None,
    tensor_parallel: int = 1,
) -> ActivationComponents:
    """Per-layer activation memory breakdown for a padded micro-batch.

    ``kv_len`` is the key/value sequence length of the attention block; for
    self-attention it equals ``seq_len``, for T5 cross-attention it is the
    encoder sequence length.
    """
    check_positive("batch", batch)
    check_non_negative("seq_len", seq_len)
    check_positive("tensor_parallel", tensor_parallel)
    if seq_len == 0:
        return ActivationComponents(0.0, 0.0, 0.0, 0.0)
    if kv_len is None:
        kv_len = seq_len
    h = config.hidden_size
    p = config.attention_projection_size
    f = config.ffn_hidden_size
    boundary = DTYPE_BYTES * batch * seq_len * h
    attention_linear = DTYPE_BYTES * batch * (seq_len * p * 3 + kv_len * p * 2) / tensor_parallel
    attention_scores = DTYPE_BYTES * batch * config.num_heads * seq_len * kv_len / tensor_parallel
    ffn = DTYPE_BYTES * batch * seq_len * f / tensor_parallel
    return ActivationComponents(boundary, attention_linear, attention_scores, ffn)


def activation_bytes_per_layer(
    config: ModelConfig,
    batch: int,
    seq_len: int,
    kv_len: int | None = None,
    recompute: bool | RecomputeMode = False,
    tensor_parallel: int = 1,
) -> float:
    """Activation bytes one layer must hold until its backward pass.

    ``recompute`` accepts either a :class:`RecomputeMode` or a boolean for
    convenience (``True`` meaning full recomputation).
    """
    if isinstance(recompute, bool):
        mode = RecomputeMode.FULL if recompute else RecomputeMode.NONE
    else:
        mode = recompute
    components = activation_components(config, batch, seq_len, kv_len, tensor_parallel)
    return components.total(mode)


def static_stage_bytes(
    config: ModelConfig,
    layers: int,
    tensor_parallel: int = 1,
    zero_shards: int = 1,
    workspace_bytes: float = 1.5 * 1024**3,
) -> float:
    """Total static (non-activation) memory of a pipeline stage holding
    ``layers`` layers: parameters + gradients + optimizer state + workspace."""
    check_non_negative("workspace_bytes", workspace_bytes)
    return (
        parameter_bytes(config, layers, tensor_parallel)
        + weight_gradient_bytes(config, layers, tensor_parallel)
        + optimizer_state_bytes(config, layers, tensor_parallel, zero_shards)
        + workspace_bytes
    )
