"""Pipeline instruction definitions.

Instructions are small frozen dataclasses; an execution plan is simply an
ordered list of them per device.  Communication instructions carry the peer
stage and the byte count of the transferred tensor so that executors never
need to exchange tensor shapes at runtime (paper §6, last paragraph).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape


class InstructionKind(str, enum.Enum):
    """Discriminator for instruction (de)serialisation and execution."""

    FORWARD = "forward"
    BACKWARD = "backward"
    SEND_ACT_START = "send_act_start"
    RECV_ACT_START = "recv_act_start"
    SEND_GRAD_START = "send_grad_start"
    RECV_GRAD_START = "recv_grad_start"
    WAIT_SEND_ACT = "wait_send_act"
    WAIT_RECV_ACT = "wait_recv_act"
    WAIT_SEND_GRAD = "wait_send_grad"
    WAIT_RECV_GRAD = "wait_recv_grad"


class CommDirection(str, enum.Enum):
    """Whether a transfer carries activations (forward) or gradients (backward)."""

    ACTIVATION = "activation"
    GRADIENT = "gradient"


@dataclass(frozen=True)
class PipelineInstruction:
    """Base class of all pipeline instructions.

    Attributes:
        microbatch: Index of the micro-batch the instruction operates on.
        stage: Pipeline stage (device) executing the instruction.
    """

    microbatch: int
    stage: int

    kind: InstructionKind = field(init=False, repr=False, default=None)  # type: ignore[assignment]

    @property
    def is_compute(self) -> bool:
        """Whether the instruction occupies the compute stream."""
        return isinstance(self, (ForwardPass, BackwardPass))

    @property
    def is_comm_start(self) -> bool:
        """Whether the instruction launches a transfer on the comm stream."""
        return isinstance(self, _CommStart)

    @property
    def is_wait(self) -> bool:
        """Whether the instruction blocks compute on a previously launched transfer."""
        return isinstance(self, _CommWait)


@dataclass(frozen=True)
class ForwardPass(PipelineInstruction):
    """Run the forward computation of a micro-batch on this stage.

    Attributes:
        shape: Padded micro-batch tensor shape (drives execution time).
        recompute: Activation checkpointing mode used for this micro-batch.
    """

    shape: MicroBatchShape = None  # type: ignore[assignment]
    recompute: RecomputeMode = RecomputeMode.NONE

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", InstructionKind.FORWARD)
        if self.shape is None:
            raise ValueError("ForwardPass requires a micro-batch shape")


@dataclass(frozen=True)
class BackwardPass(PipelineInstruction):
    """Run the backward computation of a micro-batch on this stage."""

    shape: MicroBatchShape = None  # type: ignore[assignment]
    recompute: RecomputeMode = RecomputeMode.NONE

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", InstructionKind.BACKWARD)
        if self.shape is None:
            raise ValueError("BackwardPass requires a micro-batch shape")


@dataclass(frozen=True)
class _CommStart(PipelineInstruction):
    """Base class of Start communication instructions.

    Attributes:
        peer: The pipeline stage on the other side of the transfer.
        nbytes: Size of the transferred tensor in bytes.
    """

    peer: int = -1
    nbytes: float = 0.0

    def __post_init__(self) -> None:
        if self.peer < 0:
            raise ValueError(f"{type(self).__name__} requires a valid peer stage")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")

    @property
    def direction(self) -> CommDirection:
        """Whether this transfer carries activations or gradients."""
        raise NotImplementedError

    @property
    def is_send(self) -> bool:
        """Whether this device is the sender of the transfer."""
        raise NotImplementedError


@dataclass(frozen=True)
class _CommWait(PipelineInstruction):
    """Base class of Wait communication instructions."""

    peer: int = -1

    def __post_init__(self) -> None:
        if self.peer < 0:
            raise ValueError(f"{type(self).__name__} requires a valid peer stage")


@dataclass(frozen=True)
class SendActStart(_CommStart):
    """Launch the send of a micro-batch's output activation to ``peer``."""

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "kind", InstructionKind.SEND_ACT_START)

    @property
    def direction(self) -> CommDirection:
        return CommDirection.ACTIVATION

    @property
    def is_send(self) -> bool:
        return True


@dataclass(frozen=True)
class RecvActStart(_CommStart):
    """Launch the receive of a micro-batch's input activation from ``peer``."""

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "kind", InstructionKind.RECV_ACT_START)

    @property
    def direction(self) -> CommDirection:
        return CommDirection.ACTIVATION

    @property
    def is_send(self) -> bool:
        return False


@dataclass(frozen=True)
class SendGradStart(_CommStart):
    """Launch the send of a micro-batch's input gradient to ``peer``."""

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "kind", InstructionKind.SEND_GRAD_START)

    @property
    def direction(self) -> CommDirection:
        return CommDirection.GRADIENT

    @property
    def is_send(self) -> bool:
        return True


@dataclass(frozen=True)
class RecvGradStart(_CommStart):
    """Launch the receive of a micro-batch's output gradient from ``peer``."""

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "kind", InstructionKind.RECV_GRAD_START)

    @property
    def direction(self) -> CommDirection:
        return CommDirection.GRADIENT

    @property
    def is_send(self) -> bool:
        return False


@dataclass(frozen=True)
class WaitSendAct(_CommWait):
    """Wait for a previously launched activation send to complete."""

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "kind", InstructionKind.WAIT_SEND_ACT)


@dataclass(frozen=True)
class WaitRecvAct(_CommWait):
    """Wait for a previously launched activation receive to complete."""

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "kind", InstructionKind.WAIT_RECV_ACT)


@dataclass(frozen=True)
class WaitSendGrad(_CommWait):
    """Wait for a previously launched gradient send to complete."""

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "kind", InstructionKind.WAIT_SEND_GRAD)


@dataclass(frozen=True)
class WaitRecvGrad(_CommWait):
    """Wait for a previously launched gradient receive to complete."""

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "kind", InstructionKind.WAIT_RECV_GRAD)


#: Mapping from instruction kind to class, used by deserialisation.
INSTRUCTION_CLASSES: dict[InstructionKind, type[PipelineInstruction]] = {
    InstructionKind.FORWARD: ForwardPass,
    InstructionKind.BACKWARD: BackwardPass,
    InstructionKind.SEND_ACT_START: SendActStart,
    InstructionKind.RECV_ACT_START: RecvActStart,
    InstructionKind.SEND_GRAD_START: SendGradStart,
    InstructionKind.RECV_GRAD_START: RecvGradStart,
    InstructionKind.WAIT_SEND_ACT: WaitSendAct,
    InstructionKind.WAIT_RECV_ACT: WaitRecvAct,
    InstructionKind.WAIT_SEND_GRAD: WaitSendGrad,
    InstructionKind.WAIT_RECV_GRAD: WaitRecvGrad,
}
