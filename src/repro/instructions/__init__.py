"""Pipeline instruction abstraction (paper §3, "Execution plans").

Execution plans are sequences of pipeline instructions per executor,
following the DeepSpeed design the paper adopts: ``ForwardPass`` /
``BackwardPass`` compute instructions plus communication instructions that
are split into a *Start* op (launches the transfer on the communication
stream) and a *Wait* op (blocks the compute stream until the transfer has
finished).  The split is what allows DynaPipe to overlap communication with
computation while still expressing a deterministic, deadlock-free order of
transfers on every device.
"""

from repro.instructions.ops import (
    BackwardPass,
    CommDirection,
    ForwardPass,
    InstructionKind,
    PipelineInstruction,
    RecvActStart,
    RecvGradStart,
    SendActStart,
    SendGradStart,
    WaitRecvAct,
    WaitRecvGrad,
    WaitSendAct,
    WaitSendGrad,
)
from repro.instructions.serialization import (
    instruction_from_dict,
    instruction_signature,
    instruction_to_dict,
    instructions_from_dicts,
    instructions_to_dicts,
)
from repro.instructions.store import (
    InstructionStore,
    PlanFailedError,
    PlanNotReadyError,
)

__all__ = [
    "PipelineInstruction",
    "InstructionKind",
    "CommDirection",
    "ForwardPass",
    "BackwardPass",
    "SendActStart",
    "RecvActStart",
    "SendGradStart",
    "RecvGradStart",
    "WaitSendAct",
    "WaitRecvAct",
    "WaitSendGrad",
    "WaitRecvGrad",
    "instruction_to_dict",
    "instruction_from_dict",
    "instruction_signature",
    "instructions_to_dicts",
    "instructions_from_dicts",
    "InstructionStore",
    "PlanNotReadyError",
    "PlanFailedError",
]
