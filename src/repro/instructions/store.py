"""Distributed instruction store.

The real system uses Redis in the host memory of one machine: planners push
serialised execution plans keyed by (iteration, executor) and executors
pre-fetch them.  The reproduction keeps the same interface over an
in-process dictionary, including the "plan not ready yet" condition an
executor can observe when planning for a future iteration has not finished.

The store is *job-namespaced* so one instance can serve a whole fleet (the
paper's CPU-side "planning cluster" is shared by every training worker):
plans are keyed ``(job, iteration, replica)`` and failure markers
``(job, iteration)``.  Single-job consumers never pass ``job`` and live in
the :data:`DEFAULT_JOB` namespace, so the single-runtime API is unchanged.

Planning failures are first-class: when a planner cannot produce a plan for
an iteration it pushes a *failure marker* instead, so an executor polling
:meth:`InstructionStore.ready` / :meth:`InstructionStore.fetch` observes a
:class:`PlanFailedError` immediately rather than spinning until its fetch
timeout on a plan that will never arrive.  Markers are scoped to their
``(job, iteration)`` and are *last-writer-wins*: a successful
:meth:`InstructionStore.push` clears any stale marker for its key, so a
retried job can re-plan an iteration a previous attempt failed without the
old marker masking the new plan forever.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from repro.obs.events import publish as _publish
from repro.obs.registry import REGISTRY

#: Namespace of consumers that never pass ``job`` (the single-job runtime).
DEFAULT_JOB = ""

#: Registry-backed store counters (``store.*`` in metric snapshots).
_STORE_STATS = REGISTRY.counter_dict(
    "store", ("plans_pushed", "failures_pushed", "fetches", "fetch_misses")
)


class PlanNotReadyError(KeyError):
    """Raised when an executor fetches a plan that has not been pushed yet."""


class StoreTransientError(PlanNotReadyError):
    """A transient store-side fault: the fetch failed but the plan may exist.

    Deliberately a :class:`PlanNotReadyError` subclass — the real system's
    Redis hiccups (connection resets, timeouts) are retryable, so executors
    that already retry "not ready" handle a transient store error with the
    same loop.  Armed by :meth:`InstructionStore.inject_transient_errors`
    (the chaos harness's store-fault primitive).
    """


class PlanFailedError(RuntimeError):
    """Raised when planning for the fetched iteration failed.

    Deliberately *not* a :class:`PlanNotReadyError` subclass: executors retry
    "not ready" (the plan may still arrive) but must fail fast on "failed"
    (the plan never will).

    Attributes:
        iteration: The store/pool key the failure marker was pushed under
            (``None`` when the failure is not tied to one key).  Consumers
            resuming work should rely on their own committed-progress
            accounting (as the fleet's checkpoints do) and treat this as
            diagnostics.
        job: Job namespace of the failure marker (``None`` when the failure
            is not tied to a store key; :data:`DEFAULT_JOB` for single-job
            consumers).
    """

    def __init__(
        self, message: str, iteration: int | None = None, job: str | None = None
    ) -> None:
        super().__init__(message)
        self.iteration = iteration
        self.job = job


class InstructionStore:
    """Key/value store for serialised execution plans.

    Keys are ``(job, iteration, executor_rank)`` triples; values are
    arbitrary JSON-compatible payloads (typically the output of
    :func:`repro.instructions.serialization.instructions_to_dicts` plus plan
    metadata).  The store is thread-safe so that a planner pool and executor
    threads can share it, mirroring the CPU-planner / GPU-executor overlap of
    the real system; one store instance can back a whole fleet of jobs, each
    isolated in its own namespace.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._plans: dict[tuple[str, int, int], Any] = {}
        self._failures: dict[tuple[str, int], str] = {}
        self._transient_errors = 0
        self._transient_message = ""

    def inject_transient_errors(
        self, count: int = 1, message: str = "injected transient store error"
    ) -> None:
        """Arm the next ``count`` :meth:`fetch` calls to fail transiently.

        Each armed fetch raises :class:`StoreTransientError` (a retryable
        :class:`PlanNotReadyError`) instead of returning, decrementing the
        counter — modelling a Redis connection hiccup that clears after a
        bounded number of attempts.  State-changing operations (push,
        evict) are unaffected, matching the read-path-only failure mode
        the real system retries around.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        with self._lock:
            self._transient_errors += count
            self._transient_message = message

    def push(
        self, iteration: int, executor_rank: int, plan: Any, job: str = DEFAULT_JOB
    ) -> None:
        """Store the plan for ``executor_rank`` at ``(job, iteration)``.

        A successful push clears any failure marker for the same
        ``(job, iteration)``: the marker described a planning attempt that
        has since been superseded, and leaving it would permanently mask the
        new plan from every rank (fatal once a store is shared across job
        retries).
        """
        with self._lock:
            self._plans[(job, iteration, executor_rank)] = plan
            self._failures.pop((job, iteration), None)
            _STORE_STATS["plans_pushed"] += 1
        _publish("plan_pushed", job=job, iteration=iteration, replica=executor_rank)

    def push_failure(self, iteration: int, message: str, job: str = DEFAULT_JOB) -> None:
        """Mark planning of ``(job, iteration)`` as failed (for every rank).

        Subsequent :meth:`fetch` calls for the iteration raise
        :class:`PlanFailedError` and :meth:`ready` reports ``True`` so that
        polling executors wake up and observe the failure.  Only ``job``'s
        executors are affected — other jobs sharing the store (and the same
        iteration index) never see the marker.
        """
        with self._lock:
            self._failures[(job, iteration)] = message
            _STORE_STATS["failures_pushed"] += 1
        _publish("plan_failure_pushed", job=job, iteration=iteration, message=message)

    def fetch(self, iteration: int, executor_rank: int, job: str = DEFAULT_JOB) -> Any:
        """Fetch a plan.

        Raises:
            StoreTransientError: If a transient store fault is armed (see
                :meth:`inject_transient_errors`); retryable.
            PlanFailedError: If planning of ``(job, iteration)`` failed.
            PlanNotReadyError: If the plan has not been pushed yet.
        """
        with self._lock:
            if self._transient_errors > 0:
                self._transient_errors -= 1
                raise StoreTransientError(
                    f"{self._transient_message} (fetch of iteration {iteration}, "
                    f"executor {executor_rank})"
                )
            if (job, iteration) in self._failures:
                raise PlanFailedError(
                    f"planning failed for iteration {iteration}"
                    + (f" of job {job!r}" if job != DEFAULT_JOB else "")
                    + f": {self._failures[(job, iteration)]}",
                    iteration=iteration,
                    job=job,
                )
            _STORE_STATS["fetches"] += 1
            try:
                return self._plans[(job, iteration, executor_rank)]
            except KeyError as exc:
                _STORE_STATS["fetch_misses"] += 1
                raise PlanNotReadyError(
                    f"no plan for iteration {iteration}, executor {executor_rank}"
                    + (f", job {job!r}" if job != DEFAULT_JOB else "")
                ) from exc

    def ready(self, iteration: int, executor_rank: int, job: str = DEFAULT_JOB) -> bool:
        """Whether a fetch for the key would return.

        ``True`` also covers failed iterations: the executor's fetch returns
        immediately (with :class:`PlanFailedError`) instead of blocking.
        """
        with self._lock:
            return (
                (job, iteration, executor_rank) in self._plans
                or (job, iteration) in self._failures
            )

    def failed_iterations(self, job: str = DEFAULT_JOB) -> dict[int, str]:
        """Failure messages of ``job``'s iterations whose planning failed."""
        with self._lock:
            return {
                iteration: message
                for (marker_job, iteration), message in self._failures.items()
                if marker_job == job
            }

    def evict_iteration(self, iteration: int, job: str = DEFAULT_JOB) -> int:
        """Remove all plans (and any failure marker) of ``(job, iteration)``.

        Returns the number of plans removed.  Executors call this after an
        iteration completes so the store does not grow with the length of
        training.
        """
        with self._lock:
            keys = [key for key in self._plans if key[0] == job and key[1] == iteration]
            for key in keys:
                del self._plans[key]
            self._failures.pop((job, iteration), None)
            return len(keys)

    def evict_job(self, job: str) -> int:
        """Remove every plan and failure marker of ``job``.

        The fleet calls this when a job stream retires (finished, preempted
        or failed) so a shared store never leaks a terminated job's state
        into a later attempt under the same name.  Returns the number of
        plans removed.
        """
        with self._lock:
            plan_keys = [key for key in self._plans if key[0] == job]
            for key in plan_keys:
                del self._plans[key]
            for key in [key for key in self._failures if key[0] == job]:
                del self._failures[key]
            return len(plan_keys)

    def iterations(self, job: str = DEFAULT_JOB) -> list[int]:
        """Sorted iterations of ``job`` that currently have at least one plan."""
        with self._lock:
            return sorted(
                {iteration for plan_job, iteration, _ in self._plans if plan_job == job}
            )

    def jobs(self) -> list[str]:
        """Sorted job namespaces with at least one plan or failure marker."""
        with self._lock:
            return sorted(
                {key[0] for key in self._plans} | {key[0] for key in self._failures}
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __iter__(self) -> Iterator[tuple[str, int, int]]:
        with self._lock:
            return iter(list(self._plans))
