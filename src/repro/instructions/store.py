"""Distributed instruction store.

The real system uses Redis in the host memory of one machine: planners push
serialised execution plans keyed by (iteration, executor) and executors
pre-fetch them.  The reproduction keeps the same interface over an
in-process dictionary, including the "plan not ready yet" condition an
executor can observe when planning for a future iteration has not finished.

Planning failures are first-class: when a planner cannot produce a plan for
an iteration it pushes a *failure marker* instead, so an executor polling
:meth:`InstructionStore.ready` / :meth:`InstructionStore.fetch` observes a
:class:`PlanFailedError` immediately rather than spinning until its fetch
timeout on a plan that will never arrive.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator


class PlanNotReadyError(KeyError):
    """Raised when an executor fetches a plan that has not been pushed yet."""


class PlanFailedError(RuntimeError):
    """Raised when planning for the fetched iteration failed.

    Deliberately *not* a :class:`PlanNotReadyError` subclass: executors retry
    "not ready" (the plan may still arrive) but must fail fast on "failed"
    (the plan never will).

    Attributes:
        iteration: The store/pool key the failure marker was pushed under
            (``None`` when the failure is not tied to one key).  Note this
            is the *key*, not necessarily an absolute training iteration: a
            planner pool keys tasks by position in its mini-batch list, so
            on a resumed session the two differ.  Consumers resuming work
            should rely on their own committed-progress accounting (as the
            fleet's checkpoints do) and treat this as diagnostics.
    """

    def __init__(self, message: str, iteration: int | None = None) -> None:
        super().__init__(message)
        self.iteration = iteration


class InstructionStore:
    """Key/value store for serialised execution plans.

    Keys are ``(iteration, executor_rank)`` pairs; values are arbitrary
    JSON-compatible payloads (typically the output of
    :func:`repro.instructions.serialization.instructions_to_dicts` plus plan
    metadata).  The store is thread-safe so that a planner pool and executor
    threads can share it, mirroring the CPU-planner / GPU-executor overlap of
    the real system.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._plans: dict[tuple[int, int], Any] = {}
        self._failures: dict[int, str] = {}

    def push(self, iteration: int, executor_rank: int, plan: Any) -> None:
        """Store the plan for ``executor_rank`` at ``iteration``."""
        with self._lock:
            self._plans[(iteration, executor_rank)] = plan

    def push_failure(self, iteration: int, message: str) -> None:
        """Mark planning of ``iteration`` as failed (for every executor rank).

        Subsequent :meth:`fetch` calls for the iteration raise
        :class:`PlanFailedError` and :meth:`ready` reports ``True`` so that
        polling executors wake up and observe the failure.
        """
        with self._lock:
            self._failures[iteration] = message

    def fetch(self, iteration: int, executor_rank: int) -> Any:
        """Fetch a plan.

        Raises:
            PlanFailedError: If planning of ``iteration`` failed.
            PlanNotReadyError: If the plan has not been pushed yet.
        """
        with self._lock:
            if iteration in self._failures:
                raise PlanFailedError(
                    f"planning failed for iteration {iteration}: "
                    f"{self._failures[iteration]}",
                    iteration=iteration,
                )
            try:
                return self._plans[(iteration, executor_rank)]
            except KeyError as exc:
                raise PlanNotReadyError(
                    f"no plan for iteration {iteration}, executor {executor_rank}"
                ) from exc

    def ready(self, iteration: int, executor_rank: int) -> bool:
        """Whether a fetch for ``(iteration, executor_rank)`` would return.

        ``True`` also covers failed iterations: the executor's fetch returns
        immediately (with :class:`PlanFailedError`) instead of blocking.
        """
        with self._lock:
            return (iteration, executor_rank) in self._plans or iteration in self._failures

    def failed_iterations(self) -> dict[int, str]:
        """Failure messages of iterations whose planning failed."""
        with self._lock:
            return dict(self._failures)

    def evict_iteration(self, iteration: int) -> int:
        """Remove all plans (and any failure marker) of ``iteration``.

        Returns the number of plans removed.  Executors call this after an
        iteration completes so the store does not grow with the length of
        training.
        """
        with self._lock:
            keys = [key for key in self._plans if key[0] == iteration]
            for key in keys:
                del self._plans[key]
            self._failures.pop(iteration, None)
            return len(keys)

    def iterations(self) -> list[int]:
        """Sorted list of iterations that currently have at least one plan."""
        with self._lock:
            return sorted({iteration for iteration, _ in self._plans})

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        with self._lock:
            return iter(list(self._plans))
