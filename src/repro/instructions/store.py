"""Distributed instruction store.

The real system uses Redis in the host memory of one machine: planners push
serialised execution plans keyed by (iteration, executor) and executors
pre-fetch them.  The reproduction keeps the same interface over an
in-process dictionary, including the "plan not ready yet" condition an
executor can observe when planning for a future iteration has not finished.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator


class PlanNotReadyError(KeyError):
    """Raised when an executor fetches a plan that has not been pushed yet."""


class InstructionStore:
    """Key/value store for serialised execution plans.

    Keys are ``(iteration, executor_rank)`` pairs; values are arbitrary
    JSON-compatible payloads (typically the output of
    :func:`repro.instructions.serialization.instructions_to_dicts` plus plan
    metadata).  The store is thread-safe so that a planner thread pool and
    executor threads can share it, mirroring the CPU-planner / GPU-executor
    overlap of the real system.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._plans: dict[tuple[int, int], Any] = {}

    def push(self, iteration: int, executor_rank: int, plan: Any) -> None:
        """Store the plan for ``executor_rank`` at ``iteration``."""
        with self._lock:
            self._plans[(iteration, executor_rank)] = plan

    def fetch(self, iteration: int, executor_rank: int) -> Any:
        """Fetch a plan; raises :class:`PlanNotReadyError` if absent."""
        with self._lock:
            try:
                return self._plans[(iteration, executor_rank)]
            except KeyError as exc:
                raise PlanNotReadyError(
                    f"no plan for iteration {iteration}, executor {executor_rank}"
                ) from exc

    def ready(self, iteration: int, executor_rank: int) -> bool:
        """Whether a plan is available for ``(iteration, executor_rank)``."""
        with self._lock:
            return (iteration, executor_rank) in self._plans

    def evict_iteration(self, iteration: int) -> int:
        """Remove all plans of ``iteration``; returns the number removed.

        Executors call this after an iteration completes so the store does
        not grow with the length of training.
        """
        with self._lock:
            keys = [key for key in self._plans if key[0] == iteration]
            for key in keys:
                del self._plans[key]
            return len(keys)

    def iterations(self) -> list[int]:
        """Sorted list of iterations that currently have at least one plan."""
        with self._lock:
            return sorted({iteration for iteration, _ in self._plans})

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        with self._lock:
            return iter(list(self._plans))
