"""Instruction and execution-plan (de)serialisation.

The real DynaPipe pushes execution plans to a Redis instance where the
executors fetch them; the plans therefore must be serialisable.  The same
constraint is kept here: every instruction round-trips through plain
dictionaries (JSON compatible), which also makes plans easy to inspect and
diff in tests.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.instructions.ops import (
    INSTRUCTION_CLASSES,
    BackwardPass,
    ForwardPass,
    InstructionKind,
    PipelineInstruction,
    _CommStart,
    _CommWait,
)
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape


def instruction_to_dict(instruction: PipelineInstruction) -> dict[str, Any]:
    """Convert an instruction to a JSON-compatible dictionary."""
    payload: dict[str, Any] = {
        "kind": instruction.kind.value,
        "microbatch": instruction.microbatch,
        "stage": instruction.stage,
    }
    if isinstance(instruction, (ForwardPass, BackwardPass)):
        payload["shape"] = {
            "batch_size": instruction.shape.batch_size,
            "enc_seq_len": instruction.shape.enc_seq_len,
            "dec_seq_len": instruction.shape.dec_seq_len,
        }
        payload["recompute"] = instruction.recompute.value
    elif isinstance(instruction, _CommStart):
        payload["peer"] = instruction.peer
        payload["nbytes"] = instruction.nbytes
    elif isinstance(instruction, _CommWait):
        payload["peer"] = instruction.peer
    return payload


def instruction_from_dict(payload: dict[str, Any]) -> PipelineInstruction:
    """Rebuild an instruction from :func:`instruction_to_dict` output."""
    kind = InstructionKind(payload["kind"])
    cls = INSTRUCTION_CLASSES[kind]
    common = {"microbatch": int(payload["microbatch"]), "stage": int(payload["stage"])}
    if kind in (InstructionKind.FORWARD, InstructionKind.BACKWARD):
        shape = MicroBatchShape(
            batch_size=int(payload["shape"]["batch_size"]),
            enc_seq_len=int(payload["shape"]["enc_seq_len"]),
            dec_seq_len=int(payload["shape"]["dec_seq_len"]),
        )
        recompute = RecomputeMode(payload.get("recompute", RecomputeMode.NONE.value))
        return cls(shape=shape, recompute=recompute, **common)  # type: ignore[call-arg]
    if issubclass(cls, _CommStart):
        return cls(peer=int(payload["peer"]), nbytes=float(payload["nbytes"]), **common)  # type: ignore[call-arg]
    return cls(peer=int(payload["peer"]), **common)  # type: ignore[call-arg]


def instruction_signature(instruction: PipelineInstruction) -> tuple[str, int, int, int]:
    """Canonical identity of an instruction: ``(kind, microbatch, stage, peer)``.

    Signatures survive serialisation round-trips and process boundaries
    unchanged (they carry no shapes or byte counts), so execution backends
    use them to report per-device completion order and differential
    harnesses compare the reports across backends.  Compute instructions
    use ``peer = -1``.
    """
    return (
        instruction.kind.value,
        instruction.microbatch,
        instruction.stage,
        int(getattr(instruction, "peer", -1)),
    )


def instructions_to_dicts(instructions: Iterable[PipelineInstruction]) -> list[dict[str, Any]]:
    """Serialise a sequence of instructions."""
    return [instruction_to_dict(instruction) for instruction in instructions]


def instructions_from_dicts(payloads: Sequence[dict[str, Any]]) -> list[PipelineInstruction]:
    """Deserialise a sequence of instructions."""
    return [instruction_from_dict(payload) for payload in payloads]
