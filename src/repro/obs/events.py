"""Structured lifecycle event bus.

Every layer of the runtime publishes typed events here when telemetry is
enabled: the fleet scheduler (job submitted/admitted/preempted/evicted/
regrown/finished/failed, device failure/repair/arrival, checkpoint taken/
restored, fault injected), the planner pool (task enqueued/planned/failed),
the instruction store (plan pushed, failure marker pushed) and the
simulation engine (simulation solved).  Events carry a *simulated* fleet
clock when the publisher has one (``time_ms``) — never a wall clock — so a
seeded run's event stream is reproducible modulo thread interleaving, and
single-threaded (inline-planning) runs are reproducible exactly.

The bus is a bounded ring buffer with optional live subscribers; it is the
in-process precursor of the streaming-telemetry surface ROADMAP item 3's
always-on service exposes.  :func:`publish` is gated on
:mod:`repro.obs.state` and costs one flag check when disabled.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.obs import state as _state

#: Default ring-buffer capacity of a bus (events retained).
DEFAULT_CAPACITY = 131_072


@dataclass
class Event:
    """One published lifecycle event.

    Attributes:
        seq: Bus-local publication index (total order of the buffer).
        kind: Event type, e.g. ``"job_admitted"`` or ``"device_failure"``.
        time_ms: Simulated (fleet/simulator) clock of the event, ``None``
            for events without a simulated time (e.g. pool-side planning).
        fields: Structured payload (job name, device index, ...).
    """

    seq: int
    kind: str
    time_ms: float | None
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "kind": self.kind, "time_ms": self.time_ms, **self.fields}


class EventBus:
    """Thread-safe bounded buffer of :class:`Event`, with subscribers."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._subscribers: list[Callable[[Event], None]] = []

    def publish(self, kind: str, time_ms: float | None = None, **fields: Any) -> Event:
        with self._lock:
            event = Event(seq=self._seq, kind=kind, time_ms=time_ms, fields=fields)
            self._seq += 1
            self._events.append(event)
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Register a live callback (called synchronously on publish)."""
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        with self._lock:
            self._subscribers.remove(callback)

    def events(self, kind: str | None = None) -> list[Event]:
        """Buffered events, optionally filtered by kind."""
        with self._lock:
            events = list(self._events)
        if kind is None:
            return events
        return [event for event in events if event.kind == kind]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def structure(self) -> list[tuple[str, float | None, tuple[tuple[str, Any], ...]]]:
        """Seq-free view for determinism checks: (kind, time_ms, fields)."""
        return [
            (event.kind, event.time_ms, tuple(sorted(event.fields.items())))
            for event in self.events()
        ]

    def export_jsonl(self, path: "str | Path") -> Path:
        """Write the buffered events as one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for event in self.events():
                handle.write(json.dumps(event.to_dict()) + "\n")
        return path


#: The process-wide bus every runtime layer publishes into.
BUS = EventBus()


def publish(kind: str, time_ms: float | None = None, **fields: Any) -> None:
    """Publish onto :data:`BUS` when telemetry is enabled (no-op otherwise)."""
    if not _state.enabled():
        return
    BUS.publish(kind, time_ms=time_ms, **fields)


def events(kind: str | None = None) -> Iterable[Event]:
    """Buffered events of :data:`BUS` (optionally filtered by kind)."""
    return BUS.events(kind)
