"""Span-based tracing: nested ``with span(...)`` blocks into a ring buffer.

A span measures one scoped operation — ``span("plan", job=..., iteration=...)``
around a planner call, ``span("execute", ...)`` around an instruction-stream
execution — with wall-clock (``time.perf_counter``) start/end stamps, free-form
attributes, and the nesting relationship of spans opened inside it (tracked per
thread).  Finished spans land in the process-wide :data:`RECORDER`, a bounded
ring buffer, and can be exported as JSON-lines or Chrome trace events, or
shipped across processes as plain dicts (the planner pool forwards worker
spans to the parent with its results).

When telemetry is disabled (:mod:`repro.obs.state`), :func:`span` returns a
shared no-op singleton — no allocation, no clock read, no lock — so
instrumented hot paths cost one flag check.  ``perf_counter`` on Linux is the
system-wide monotonic clock, so spans recorded in forked/spawned worker
processes share the parent's time base and merge cleanly.

Span *durations* are wall-clock and therefore nondeterministic; the
determinism contract is on structure: under a fixed seed the sequence of
(name, depth, attributes) triples — :meth:`SpanRecorder.structure` — is
reproducible, and the tests pin exactly that.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.obs import state as _state

#: Default ring-buffer capacity of a recorder (finished spans retained).
DEFAULT_CAPACITY = 65_536


@dataclass
class SpanRecord:
    """One finished span.

    Attributes:
        span_id: Recorder-local id (allocation order of span *starts*).
        parent_id: Enclosing span's id on the same thread, ``None`` at depth 0.
        name: Operation name (``"plan"``, ``"execute"``, ...).
        start_s / end_s: ``time.perf_counter()`` stamps.
        depth: Nesting depth on the recording thread (0 = top level).
        attrs: Free-form attributes passed to :func:`span`.
        origin: Process/worker label (``""`` locally; the planner pool stamps
            worker spans with the worker id before forwarding).
    """

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float
    depth: int
    attrs: dict[str, Any] = field(default_factory=dict)
    origin: str = ""

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "depth": self.depth,
            "attrs": dict(self.attrs),
            "origin": self.origin,
        }


class SpanRecorder:
    """Bounded buffer of finished spans, with per-thread nesting tracking."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._spans: deque[SpanRecord] = deque(maxlen=capacity)
        self._seq = 0
        self._local = threading.local()

    # ------------------------------------------------------------------ recording

    def _stack(self) -> list[tuple[int, int]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self) -> tuple[int, int | None, int]:
        """Open a span on this thread; returns (span_id, parent_id, depth)."""
        stack = self._stack()
        with self._lock:
            span_id = self._seq
            self._seq += 1
        parent_id = stack[-1][0] if stack else None
        depth = len(stack)
        stack.append((span_id, depth))
        return span_id, parent_id, depth

    def finish(
        self,
        span_id: int,
        parent_id: int | None,
        depth: int,
        name: str,
        start_s: float,
        end_s: float,
        attrs: dict[str, Any],
    ) -> None:
        """Close the innermost open span and append its record."""
        stack = self._stack()
        if stack and stack[-1][0] == span_id:
            stack.pop()
        record = SpanRecord(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            start_s=start_s,
            end_s=end_s,
            depth=depth,
            attrs=attrs,
        )
        with self._lock:
            self._spans.append(record)

    def extend_dicts(self, dicts: Iterable[dict[str, Any]], origin: str = "") -> None:
        """Append spans shipped from another process (as :meth:`to_dict` dicts).

        Span ids are re-assigned into this recorder's sequence (offsetting
        parent ids identically) so cross-process ids never collide; the
        ``origin`` label (or the one already stamped on the dict) keeps the
        source process identifiable.
        """
        dicts = list(dicts)
        if not dicts:
            return
        with self._lock:
            base = self._seq
            low = min(d["span_id"] for d in dicts)
            for d in dicts:
                offset = base + (d["span_id"] - low)
                parent = d.get("parent_id")
                self._spans.append(
                    SpanRecord(
                        span_id=offset,
                        parent_id=(
                            base + (parent - low) if parent is not None else None
                        ),
                        name=d["name"],
                        start_s=d["start_s"],
                        end_s=d["end_s"],
                        depth=d["depth"],
                        attrs=dict(d.get("attrs", {})),
                        origin=d.get("origin") or origin,
                    )
                )
            self._seq = base + (max(d["span_id"] for d in dicts) - low) + 1

    # ------------------------------------------------------------------ access

    def spans(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def drain_dicts(self, origin: str = "") -> list[dict[str, Any]]:
        """Remove and return all spans as dicts (stamped with ``origin``)."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        out = []
        for record in spans:
            d = record.to_dict()
            if origin and not d["origin"]:
                d["origin"] = origin
            out.append(d)
        return out

    def structure(self) -> list[tuple[int, str, tuple[tuple[str, Any], ...]]]:
        """Timestamp-free view for determinism checks: (depth, name, attrs)."""
        return [
            (record.depth, record.name, tuple(sorted(record.attrs.items())))
            for record in self.spans()
        ]


class _NullSpan:
    """Shared no-op context manager returned when telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span: records into ``recorder`` on exit."""

    __slots__ = ("_recorder", "_name", "_attrs", "_ids", "_start")

    def __init__(self, recorder: SpanRecorder, name: str, attrs: dict[str, Any]) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._ids = self._recorder.begin()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        end = time.perf_counter()
        span_id, parent_id, depth = self._ids
        self._recorder.finish(
            span_id, parent_id, depth, self._name, self._start, end, self._attrs
        )


#: The process-wide recorder all :func:`span` calls land in.
RECORDER = SpanRecorder()


def span(name: str, **attrs: Any) -> "_Span | _NullSpan":
    """Open a recorded span (no-op singleton when telemetry is disabled)."""
    if not _state.enabled():
        return _NULL_SPAN
    return _Span(RECORDER, name, attrs)


# ---------------------------------------------------------------------- export


def spans_to_jsonl(path: "str | Path", spans: Iterable[SpanRecord]) -> Path:
    """Write spans as one JSON object per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in spans:
            handle.write(json.dumps(record.to_dict()) + "\n")
    return path
