"""Per-job simulated op-trace collection for the merged fleet trace.

The fleet scheduler's occupancy timeline shows *which job* held each device
and when, but not what happened inside an iteration — the per-op forward/
backward timeline lives in the simulated executor's
:class:`~repro.simulator.trace.ExecutionTrace`, on an iteration-local clock
starting at 0.  When telemetry is enabled, the training session keeps each
executed replica's op trace, the scheduler hands it to the process-wide
:data:`COLLECTOR` together with the iteration's fleet-clock start time, and
the trace merger (:mod:`repro.obs.merge`) shifts the op events onto the
fleet clock under the owning job's process row.

The collector is duck-typed over trace events (anything with ``device``,
``name``, ``start_ms``, ``end_ms``, ``category`` and ``microbatch``
attributes) so this module has no dependency on the simulator package.  It
is bounded: once ``max_events`` op events are retained, further iterations
are dropped (counted in :attr:`SimTraceCollector.dropped_events`) rather
than growing without limit — the merger reports the drop count so a
truncated trace is never mistaken for a complete one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

#: Default cap on retained op events across all jobs.
DEFAULT_MAX_EVENTS = 500_000


@dataclass
class JobIterationTrace:
    """Op traces of one committed fleet iteration.

    Attributes:
        job: Owning job's name.
        iteration: Absolute iteration index.
        start_ms: Fleet-clock time the iteration started (shift offset).
        replicas: Per-replica lists of trace events (iteration-local clock).
    """

    job: str
    iteration: int
    start_ms: float
    replicas: list[list[Any]]


class SimTraceCollector:
    """Bounded store of per-iteration op traces, keyed by job."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self._lock = threading.Lock()
        self._traces: list[JobIterationTrace] = []
        self._num_events = 0
        self.max_events = max_events
        self.dropped_events = 0

    def add(
        self,
        job: str,
        iteration: int,
        start_ms: float,
        replica_traces: Sequence[Any],
    ) -> None:
        """Record one committed iteration's replica traces.

        ``replica_traces`` entries are :class:`ExecutionTrace`-like objects
        (``.events`` list) or plain event lists.
        """
        replicas = [
            list(getattr(trace, "events", trace)) for trace in replica_traces
        ]
        count = sum(len(events) for events in replicas)
        with self._lock:
            if self._num_events + count > self.max_events:
                self.dropped_events += count
                return
            self._num_events += count
            self._traces.append(
                JobIterationTrace(
                    job=job, iteration=iteration, start_ms=start_ms, replicas=replicas
                )
            )

    def traces(self, job: str | None = None) -> list[JobIterationTrace]:
        with self._lock:
            traces = list(self._traces)
        if job is None:
            return traces
        return [trace for trace in traces if trace.job == job]

    def jobs(self) -> list[str]:
        """Names of jobs with collected traces, sorted."""
        with self._lock:
            return sorted({trace.job for trace in self._traces})

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._num_events = 0
            self.dropped_events = 0


#: The process-wide collector the fleet scheduler records into.
COLLECTOR = SimTraceCollector()
