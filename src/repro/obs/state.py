"""Global telemetry switch: one module-level flag, off by default.

Every span/event instrumentation site in the runtime guards itself with
:func:`enabled` (or receives a no-op object from the gated constructors in
:mod:`repro.obs.spans` / :mod:`repro.obs.events`), so a disabled process
pays one attribute read and a falsy branch per site — nothing allocates,
nothing locks, nothing records.  Metric *counters* are deliberately not
gated: they predate this subsystem (``engine_stats``) and are plain dict
increments on paths that were already counting, so the disabled-path
contract is "bit-identical outputs, unmeasurable overhead", not "zero
instructions".

Enable telemetry either at import time with ``REPRO_TELEMETRY=1`` in the
environment (which worker processes started with the ``spawn`` method also
see) or at runtime with :func:`enable` / the :func:`telemetry` context
manager.  Planner-pool workers started with the default ``fork`` method
inherit the in-memory flag as of pool start; ``spawn`` workers only honour
the environment variable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Truthy values of ``REPRO_TELEMETRY`` that enable telemetry at import.
ENV_VAR = "REPRO_TELEMETRY"

_ENABLED = os.environ.get(ENV_VAR, "0").strip().lower() not in ("", "0", "false", "no")


def enabled() -> bool:
    """Whether span/event telemetry is currently on (process-local)."""
    return _ENABLED


def enable() -> None:
    """Turn span/event telemetry on for this process."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn span/event telemetry off for this process."""
    global _ENABLED
    _ENABLED = False


@contextmanager
def telemetry(on: bool = True) -> Iterator[None]:
    """Scoped enable/disable; restores the previous state on exit."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = on
    try:
        yield
    finally:
        _ENABLED = previous
