"""Merged fleet ↔ simulator ↔ planner chrome trace.

Combines three previously disjoint timelines into one hierarchical
trace-event JSON, viewable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``:

* **Fleet process** (:data:`~repro.obs.chrome.PID_FLEET`) — the scheduler's
  cluster-occupancy timeline (one compute track per device showing which
  job's iteration held it), a *capacity* track of device
  failure/repair/arrival and injected-fault instants, and a *lifecycle*
  track of every fleet-clocked event-bus event (admissions, preemptions,
  evictions, regrowths, checkpoints, ...).
* **Job processes** (:data:`~repro.obs.chrome.PID_JOB_BASE` + index) — each
  job's simulated per-op traces, collected per committed iteration by
  :data:`repro.obs.simtrace.COLLECTOR` and shifted from their
  iteration-local clock onto the fleet clock by the iteration's start time;
  one compute/comm track pair per (replica, stage).
* **Planner process** (:data:`~repro.obs.chrome.PID_PLANNER`) — planning
  and execution spans from :data:`repro.obs.spans.RECORDER` (including
  worker-process spans forwarded by the planner pool), one track per
  origin.  Spans are wall-clock; they are normalised so the earliest span
  starts at 0 and **share no time base with the simulated fleet clock** —
  the planner process shows relative planning overlap, not alignment with
  the fleet rows.

All sections run through the shared pid/tid helpers in
:mod:`repro.obs.chrome`, so process ids never collide and metadata naming
is uniform.  Everything fleet/job-side uses the *simulated* clock, so the
merged trace of a seeded run is reproducible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs import chrome as _chrome
from repro.obs.events import BUS as _BUS
from repro.obs.events import Event, EventBus
from repro.obs.simtrace import COLLECTOR as _COLLECTOR
from repro.obs.simtrace import SimTraceCollector
from repro.obs.spans import RECORDER as _RECORDER
from repro.obs.spans import SpanRecord

#: Event-bus kinds drawn on the fleet capacity track (the rest of the
#: fleet-clocked events land on the lifecycle track).
_CAPACITY_KINDS = ("device_failure", "device_repair", "device_arrival", "fault_injected")


def _fleet_section(report: Any, bus_events: Iterable[Event]) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = []
    pid = _chrome.PID_FLEET
    events.extend(
        _chrome.process_name_event(pid, f"fleet ({report.policy})", sort_index=0)
    )
    devices = sorted({event.device for event in report.trace.events})
    events.extend(_chrome.device_thread_metadata(pid, devices))
    capacity_tid = 2 * report.num_devices
    lifecycle_tid = capacity_tid + 1
    events.append(_chrome.thread_name_event(pid, capacity_tid, "cluster capacity"))
    events.append(_chrome.thread_name_event(pid, lifecycle_tid, "job lifecycle"))
    for event in report.trace.events:
        events.append(
            _chrome.duration_event(
                pid,
                _chrome.device_tid(event.device, event.category),
                event.name,
                event.start_ms,
                event.end_ms - event.start_ms,
                category=event.category,
                args={"microbatch": event.microbatch},
            )
        )
    for change in report.capacity_timeline:
        events.append(
            _chrome.instant_event(
                pid,
                capacity_tid,
                f"{change.event} d{change.device}",
                change.time_ms,
                category="capacity",
                args={"device": change.device, "alive": change.alive_count},
            )
        )
    for fault in report.fault_log:
        events.append(
            _chrome.instant_event(
                pid,
                capacity_tid,
                fault["kind"],
                fault["time_ms"],
                category="fault",
                args={"requested": fault["requested"], "applied": fault["applied"]},
            )
        )
    for event in bus_events:
        if event.time_ms is None:
            continue
        tid = capacity_tid if event.kind in _CAPACITY_KINDS else lifecycle_tid
        events.append(
            _chrome.instant_event(
                pid,
                tid,
                event.kind,
                event.time_ms,
                category="lifecycle",
                args=dict(event.fields),
            )
        )
    return events


def _job_sections(
    collector: SimTraceCollector,
) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = []
    for index, job in enumerate(collector.jobs()):
        pid = _chrome.PID_JOB_BASE + index
        traces = collector.traces(job)
        events.extend(_chrome.process_name_event(pid, f"job {job}", sort_index=2 + index))
        num_stages = 1 + max(
            (op.device for trace in traces for replica in trace.replicas for op in replica),
            default=0,
        )
        block = 2 * num_stages
        max_replicas = max((len(trace.replicas) for trace in traces), default=0)
        for replica in range(max_replicas):
            for stage in range(num_stages):
                for suffix, category in (("compute", "compute"), ("comm", "comm")):
                    events.append(
                        _chrome.thread_name_event(
                            pid,
                            replica * block + _chrome.device_tid(stage, category),
                            f"replica {replica} stage {stage} ({suffix})",
                        )
                    )
        for trace in traces:
            for replica, ops in enumerate(trace.replicas):
                events.extend(
                    _chrome.trace_events_to_chrome(
                        ops,
                        pid,
                        offset_ms=trace.start_ms,
                        tid_offset=replica * block,
                    )
                )
    return events


def _planner_section(spans: list[SpanRecord]) -> list[dict[str, Any]]:
    if not spans:
        return []
    events: list[dict[str, Any]] = []
    pid = _chrome.PID_PLANNER
    events.extend(
        _chrome.process_name_event(pid, "planner spans (wall clock)", sort_index=1)
    )
    origins = sorted({record.origin or "parent" for record in spans})
    tids = {origin: tid for tid, origin in enumerate(origins)}
    for origin, tid in tids.items():
        events.append(_chrome.thread_name_event(pid, tid, origin))
    t0 = min(record.start_s for record in spans)
    for record in spans:
        events.append(
            _chrome.duration_event(
                pid,
                tids[record.origin or "parent"],
                record.name,
                (record.start_s - t0) * 1_000.0,
                record.duration_s * 1_000.0,
                category="span",
                args={"depth": record.depth, **record.attrs},
            )
        )
    return events


def merge_fleet_trace(
    report: Any,
    collector: SimTraceCollector | None = None,
    spans: "list[SpanRecord] | None" = None,
    bus: EventBus | None = None,
) -> dict[str, Any]:
    """Build the merged trace payload for one fleet run.

    Args:
        report: The run's :class:`~repro.fleet.metrics.FleetReport`.
        collector: Per-job op traces; defaults to the process-wide
            :data:`~repro.obs.simtrace.COLLECTOR`.
        spans: Planning/execution spans; defaults to the process-wide
            recorder's contents.
        bus: Lifecycle event source; defaults to the process-wide bus.

    Returns:
        A ``{"traceEvents": [...], "displayTimeUnit": "ms", "otherData"...}``
        dict, JSON-serialisable as-is.
    """
    collector = collector if collector is not None else _COLLECTOR
    spans = spans if spans is not None else _RECORDER.spans()
    bus = bus if bus is not None else _BUS
    trace_events = (
        _fleet_section(report, bus.events())
        + _job_sections(collector)
        + _planner_section(spans)
    )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "policy": report.policy,
            "makespan_ms": report.makespan_ms,
            "sim_trace_dropped_events": collector.dropped_events,
        },
    }


def save_merged_trace(
    path: "str | Path",
    report: Any,
    collector: SimTraceCollector | None = None,
    spans: "list[SpanRecord] | None" = None,
    bus: EventBus | None = None,
) -> Path:
    """Write :func:`merge_fleet_trace`'s payload as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = merge_fleet_trace(report, collector=collector, spans=spans, bus=bus)
    path.write_text(json.dumps(payload))
    return path
