"""Process-safe metrics registry: counters, gauges, histograms with labels.

One :data:`REGISTRY` instance per process holds every metric the runtime
exports.  Three access patterns coexist:

* **Metric objects** — :meth:`MetricsRegistry.counter` /
  :meth:`~MetricsRegistry.gauge` / :meth:`~MetricsRegistry.histogram`
  get-or-create a named metric (optionally labelled) under a lock and
  return a small mutable object whose increments are lock-free; callers on
  warm paths cache the object.
* **Registry-owned counter dicts** — :meth:`MetricsRegistry.counter_dict`
  registers a plain ``dict[str, int]`` under a namespace and returns it.
  Hot paths keep their pre-telemetry ``STATS[key] += 1`` idiom at exactly
  its old cost (one dict ``__setitem__``), while :meth:`snapshot` folds the
  dict into the exported counters as ``namespace.key``.  This is how
  ``repro.simulator``'s ``engine_stats`` migrated without perturbing the
  benchmarked hot paths.
* **Snapshots** — :meth:`snapshot` returns a JSON-safe dict; worker
  processes ship their snapshots to the parent over the planner pool's
  result queue, and :func:`merge_snapshot` / :func:`aggregate_snapshots`
  sum counters and histogram moments across processes (gauges are
  last-writer-wins), giving one fleet-wide view of multi-process counts.

Counters and histograms are monotonic between resets, so "keep the latest
snapshot per worker and sum" is exact.  All mutation is either guarded by
the registry lock (creation, reset) or a single-bytecode dict/attribute
update (increments), which is atomic under the GIL.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

_SEPARATOR = "."


def metric_key(name: str, labels: Mapping[str, Any] | None = None) -> str:
    """Canonical snapshot key: ``name`` or ``name{a=1,b=x}`` (sorted labels)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (between resets)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-observed value (alive devices, queue depth, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Streaming moments of an observed distribution (count/sum/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def to_dict(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
        }


class MetricsRegistry:
    """Named metrics of one process, snapshottable to a JSON-safe dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._counter_dicts: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------ metric access

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get-or-create the counter ``name`` (with optional labels)."""
        key = metric_key(name, labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get-or-create the gauge ``name`` (with optional labels)."""
        key = metric_key(name, labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """Get-or-create the histogram ``name`` (with optional labels)."""
        key = metric_key(name, labels)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram()
        return metric

    def counter_dict(self, namespace: str, keys: Iterable[str]) -> dict[str, int]:
        """Register (or fetch) a plain counter dict owned by the registry.

        The returned dict is the live storage: hot paths increment it with
        ``stats[key] += 1`` — the exact pre-telemetry idiom and cost — and
        :meth:`snapshot` exports each entry as ``namespace.key``.  Calling
        again with the same namespace returns the same dict (missing keys
        are added at zero), so module reloads and tests are idempotent.
        """
        with self._lock:
            stats = self._counter_dicts.get(namespace)
            if stats is None:
                stats = self._counter_dicts[namespace] = {}
            for key in keys:
                stats.setdefault(key, 0)
        return stats

    # ------------------------------------------------------------------ snapshot / reset

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe view of every metric: ``{"counters", "gauges", "histograms"}``."""
        with self._lock:
            counters: dict[str, int] = {
                key: metric.value for key, metric in self._counters.items()
            }
            for namespace, stats in self._counter_dicts.items():
                for key, value in stats.items():
                    counters[f"{namespace}{_SEPARATOR}{key}"] = value
            return {
                "counters": counters,
                "gauges": {key: metric.value for key, metric in self._gauges.items()},
                "histograms": {
                    key: metric.to_dict() for key, metric in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Zero every metric in place (registered objects stay valid)."""
        with self._lock:
            for metric in self._counters.values():
                metric.value = 0
            for gauge in self._gauges.values():
                gauge.value = 0.0
            for histogram in self._histograms.values():
                histogram.count = 0
                histogram.total = 0.0
                histogram.min = float("inf")
                histogram.max = float("-inf")
            for stats in self._counter_dicts.values():
                for key in stats:
                    stats[key] = 0


def merge_snapshot(into: dict[str, Any], snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """Fold ``snapshot`` into accumulator ``into`` (summing counters/histograms)."""
    counters = into.setdefault("counters", {})
    for key, value in snapshot.get("counters", {}).items():
        counters[key] = counters.get(key, 0) + value
    gauges = into.setdefault("gauges", {})
    gauges.update(snapshot.get("gauges", {}))
    histograms = into.setdefault("histograms", {})
    for key, stats in snapshot.get("histograms", {}).items():
        merged = histograms.get(key)
        if merged is None or merged["count"] == 0:
            histograms[key] = dict(stats)
            continue
        if stats["count"] == 0:
            continue
        count = merged["count"] + stats["count"]
        total = merged["sum"] + stats["sum"]
        histograms[key] = {
            "count": count,
            "sum": total,
            "min": min(merged["min"], stats["min"]),
            "max": max(merged["max"], stats["max"]),
            "mean": total / count,
        }
    return into


def aggregate_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Sum a sequence of per-process snapshots into one combined view."""
    combined: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        merge_snapshot(combined, snapshot)
    return combined


#: The process-wide registry every runtime module records into.
REGISTRY = MetricsRegistry()
