"""Unified telemetry: metrics registry, span tracing, lifecycle event bus.

``repro.obs`` is the cross-layer observability substrate of the runtime —
the "where did the time go?" answer across planner, planner pool,
instruction store, simulation engine and fleet scheduler.  Three primitives
share one process-wide home each:

* :data:`~repro.obs.registry.REGISTRY` — counters / gauges / histograms
  (:mod:`repro.obs.registry`); always on, snapshot-to-dict, with
  cross-process aggregation of worker snapshots shipped over the planner
  pool's result queue.
* :func:`~repro.obs.spans.span` — nested wall-clock spans into the ring
  buffer :data:`~repro.obs.spans.RECORDER` (:mod:`repro.obs.spans`).
* :func:`~repro.obs.events.publish` — structured lifecycle events on the
  simulated clock into :data:`~repro.obs.events.BUS`
  (:mod:`repro.obs.events`).

Spans, events and per-job op-trace collection
(:mod:`repro.obs.simtrace`) are gated by the module-level flag in
:mod:`repro.obs.state` (off by default; ``REPRO_TELEMETRY=1`` or
:func:`enable`).  The disabled fast path is a single flag check per site,
and primary outputs (plans, reports, makespans) are bit-identical either
way — the determinism suite pins this.

The trace merger lives in :mod:`repro.obs.merge` (imported on demand — it
depends on simulator trace conventions): it combines a fleet run's
occupancy timeline, each job's simulated op traces and the planning spans
into one hierarchical Chrome trace via the shared pid/tid scheme in
:mod:`repro.obs.chrome`.
"""

from __future__ import annotations

from repro.obs.chrome import PID_FLEET, PID_JOB_BASE, PID_PLANNER, device_tid
from repro.obs.events import BUS, Event, EventBus, events, publish
from repro.obs.registry import (
    REGISTRY,
    MetricsRegistry,
    aggregate_snapshots,
    merge_snapshot,
    metric_key,
)
from repro.obs.simtrace import COLLECTOR, JobIterationTrace, SimTraceCollector
from repro.obs.spans import RECORDER, SpanRecord, SpanRecorder, span, spans_to_jsonl
from repro.obs.state import disable, enable, enabled, telemetry

__all__ = [
    "BUS",
    "COLLECTOR",
    "Event",
    "EventBus",
    "JobIterationTrace",
    "MetricsRegistry",
    "PID_FLEET",
    "PID_JOB_BASE",
    "PID_PLANNER",
    "RECORDER",
    "REGISTRY",
    "SimTraceCollector",
    "SpanRecord",
    "SpanRecorder",
    "aggregate_snapshots",
    "device_tid",
    "disable",
    "enable",
    "enabled",
    "events",
    "merge_snapshot",
    "metric_key",
    "publish",
    "reset",
    "span",
    "spans_to_jsonl",
    "telemetry",
]


def reset() -> None:
    """Clear all process-wide telemetry state (metrics, spans, events, traces).

    Used by tests, benchmarks and examples to isolate runs; the registry's
    metric objects stay valid (they are zeroed in place).
    """
    REGISTRY.reset()
    RECORDER.clear()
    BUS.clear()
    COLLECTOR.clear()
