"""Shared Chrome trace-event building blocks (pid/tid scheme, metadata).

Both trace emitters — :mod:`repro.simulator.chrome_trace` (per-schedule op
timelines) and :class:`repro.fleet.metrics.FleetReport` (cluster occupancy)
— and the merged fleet↔simulator trace (:mod:`repro.obs.merge`) build their
JSON through these helpers, so process/thread metadata is emitted once per
(pid, tid) with consistent naming and the merged file never collides pids.

Pid layout of a merged trace:

* ``PID_FLEET`` (1) — the fleet scheduler: one compute/comm track pair per
  device (:func:`device_tid`), plus a capacity-event track and a lifecycle
  track above the devices.
* ``PID_PLANNER`` (2) — planning spans, one track per origin (worker id or
  the parent process).
* ``PID_JOB_BASE`` (10) + job index — each job's simulated op traces, one
  track pair per (replica, stage).

Standalone traces keep their historical ``pid=0``; only the merged file
uses the layout above.  All timestamps are milliseconds at the API surface
and microseconds in the emitted JSON (:data:`US_PER_MS`).
"""

from __future__ import annotations

from typing import Any, Iterable

#: Microseconds per millisecond (trace-event ``ts``/``dur`` are in us).
US_PER_MS = 1000.0

#: Merged-trace process ids (see module docstring).
PID_FLEET = 1
PID_PLANNER = 2
PID_JOB_BASE = 10


def device_tid(device: int, category: str = "compute") -> int:
    """Track id of a device's compute/comm lane: ``device*2 (+1 for comm)``."""
    return device * 2 + (0 if category == "compute" else 1)


def process_name_event(pid: int, name: str, sort_index: int | None = None) -> list[dict[str, Any]]:
    """``process_name`` (and optional ``process_sort_index``) metadata events."""
    events: list[dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}
    ]
    if sort_index is not None:
        events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "args": {"sort_index": sort_index},
            }
        )
    return events


def thread_name_event(pid: int, tid: int, name: str) -> dict[str, Any]:
    """A ``thread_name`` metadata event."""
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def device_thread_metadata(pid: int, devices: Iterable[int], label: str = "device") -> list[dict[str, Any]]:
    """Compute/comm ``thread_name`` metadata for every device, shared scheme."""
    events = []
    for device in sorted(set(devices)):
        for suffix, category in (("compute", "compute"), ("comm", "comm")):
            events.append(
                thread_name_event(
                    pid, device_tid(device, category), f"{label} {device} ({suffix})"
                )
            )
    return events


def duration_event(
    pid: int,
    tid: int,
    name: str,
    start_ms: float,
    duration_ms: float,
    category: str = "compute",
    args: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """A complete (``ph:"X"``) duration event."""
    return {
        "name": name,
        "cat": category,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": start_ms * US_PER_MS,
        "dur": duration_ms * US_PER_MS,
        "args": args or {},
    }


def instant_event(
    pid: int,
    tid: int,
    name: str,
    time_ms: float,
    category: str = "event",
    args: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """A thread-scoped instant (``ph:"i"``) event."""
    return {
        "name": name,
        "cat": category,
        "ph": "i",
        "s": "t",
        "pid": pid,
        "tid": tid,
        "ts": time_ms * US_PER_MS,
        "args": args or {},
    }


def trace_events_to_chrome(
    events: Iterable[Any], pid: int, offset_ms: float = 0.0, tid_offset: int = 0
) -> list[dict[str, Any]]:
    """Convert simulator-style trace events to ``ph:"X"`` dicts.

    ``events`` are duck-typed (``device``, ``name``, ``start_ms``,
    ``end_ms``, ``category``, ``microbatch``); ``offset_ms`` shifts an
    iteration-local timeline onto a global clock and ``tid_offset`` relocates
    the device tracks (e.g. per-replica blocks in the merged trace).
    """
    return [
        duration_event(
            pid,
            tid_offset + device_tid(event.device, event.category),
            event.name,
            event.start_ms + offset_ms,
            event.end_ms - event.start_ms,
            category=event.category,
            args={"microbatch": event.microbatch},
        )
        for event in events
    ]
