"""Memory-aware adaptive pipeline scheduling (paper §5, Algorithm 1).

:class:`AdaptiveScheduler` is the planner-facing wrapper around the cyclic
scheduling algorithm: it derives the per-(micro-batch, stage) activation
footprints and the per-stage activation budgets from the cost model, runs
Algorithm 1 (optionally with a caller-supplied injection order from the
micro-batch ordering search), and can also produce the 1F1B schedule for
comparison and for the baselines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.costmodel.cost_model import CostModel
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape
from repro.schedule.cyclic import cyclic_schedule
from repro.schedule.events import ComputeOp, OpType, PipelineSchedule
from repro.schedule.one_f_one_b import one_f_one_b_schedule


class ScheduleKind(str, enum.Enum):
    """Pipeline schedule families supported by the planner."""

    ONE_F_ONE_B = "1f1b"
    """The standard 1F1B schedule (used by the baselines)."""

    ADAPTIVE = "adaptive"
    """Cyclic scheduling with unrestricted injection (max safety stock)."""

    MEMORY_AWARE_ADAPTIVE = "memory-aware-adaptive"
    """Cyclic scheduling with per-stage memory limits (Algorithm 1)."""


@dataclass
class ScheduleBuildResult:
    """A built schedule plus the data needed to simulate or execute it.

    Attributes:
        schedule: The per-stage op order.
        activation_bytes: ``[microbatch][stage]`` activation footprints used
            (and enforced) during scheduling.
        durations: Mapping from compute op to modelled duration in ms.
        memory_limits: Per-stage activation budgets passed to the scheduler
            (``None`` when the schedule kind does not limit memory).
    """

    schedule: PipelineSchedule
    activation_bytes: list[list[float]]
    durations: dict[ComputeOp, float]
    memory_limits: list[float] | None


class AdaptiveScheduler:
    """Builds pipeline schedules for a set of micro-batch shapes.

    Args:
        cost_model: Cost model of the pipeline's stages.
        device_memory_bytes: Usable memory per device; defaults to the cost
            model's device capacity.
    """

    def __init__(self, cost_model: CostModel, device_memory_bytes: float | None = None) -> None:
        self.cost_model = cost_model
        self.device_memory_bytes = (
            device_memory_bytes
            if device_memory_bytes is not None
            else cost_model.device_spec.memory_capacity
        )

    # ------------------------------------------------------------------ inputs

    def activation_matrix(
        self, shapes: Sequence[MicroBatchShape], recompute: RecomputeMode
    ) -> list[list[float]]:
        """Per-(micro-batch, stage) activation footprints.

        Uses the cost model's batched per-stage queries, so repeated builds
        over the same shapes (e.g. the injection-order search) hit the
        shape-keyed cache instead of re-querying the interpolators.
        """
        shapes = list(shapes)
        per_stage = [
            self.cost_model.stage_costs_many(stage, shapes, recompute)
            for stage in range(self.cost_model.num_stages)
        ]
        return [
            [per_stage[stage][index].activation_bytes for stage in range(len(per_stage))]
            for index in range(len(shapes))
        ]

    def duration_map(
        self, shapes: Sequence[MicroBatchShape], recompute: RecomputeMode
    ) -> dict[ComputeOp, float]:
        """Modelled duration of every compute op of the iteration."""
        shapes = list(shapes)
        durations: dict[ComputeOp, float] = {}
        for stage in range(self.cost_model.num_stages):
            costs = self.cost_model.stage_costs_many(stage, shapes, recompute)
            for microbatch, cost in enumerate(costs):
                durations[ComputeOp(microbatch, stage, OpType.FORWARD)] = cost.forward_ms
                durations[ComputeOp(microbatch, stage, OpType.BACKWARD)] = cost.backward_ms
        return durations

    def memory_limits(self) -> list[float]:
        """Per-stage activation budgets (device memory minus static memory)."""
        return [
            self.cost_model.activation_budget_bytes(stage, self.device_memory_bytes)
            for stage in range(self.cost_model.num_stages)
        ]

    # ------------------------------------------------------------------ building

    def build(
        self,
        shapes: Sequence[MicroBatchShape],
        kind: ScheduleKind | str = ScheduleKind.MEMORY_AWARE_ADAPTIVE,
        recompute: RecomputeMode = RecomputeMode.NONE,
        injection_order: Sequence[int] | None = None,
    ) -> ScheduleBuildResult:
        """Build a schedule of ``kind`` for the given micro-batch shapes.

        Args:
            shapes: Padded shapes of the iteration's micro-batches, in
                injection (execution) order unless ``injection_order`` is
                given.
            kind: Which schedule family to build.
            recompute: Recompute mode used for durations and activations.
            injection_order: Optional explicit injection order (a permutation
                of micro-batch indices) for the adaptive schedules.
        """
        if not shapes:
            raise ValueError("at least one micro-batch shape is required")
        kind = ScheduleKind(kind)
        activation = self.activation_matrix(shapes, recompute)
        durations = self.duration_map(shapes, recompute)
        num_stages = self.cost_model.num_stages

        if kind is ScheduleKind.ONE_F_ONE_B:
            schedule = one_f_one_b_schedule(num_stages, len(shapes))
            limits: list[float] | None = None
        elif kind is ScheduleKind.ADAPTIVE:
            schedule = cyclic_schedule(
                num_stages,
                activation,
                memory_limits=None,
                injection_order=injection_order,
                name="adaptive",
            )
            limits = None
        else:
            limits = self.memory_limits()
            schedule = cyclic_schedule(
                num_stages,
                activation,
                memory_limits=limits,
                injection_order=injection_order,
                name="memory-aware-adaptive",
            )
        return ScheduleBuildResult(
            schedule=schedule,
            activation_bytes=activation,
            durations=durations,
            memory_limits=limits,
        )


def build_schedule(
    cost_model: CostModel,
    shapes: Sequence[MicroBatchShape],
    kind: ScheduleKind | str = ScheduleKind.MEMORY_AWARE_ADAPTIVE,
    recompute: RecomputeMode = RecomputeMode.NONE,
    injection_order: Sequence[int] | None = None,
    device_memory_bytes: float | None = None,
) -> ScheduleBuildResult:
    """Convenience wrapper constructing an :class:`AdaptiveScheduler` and
    building one schedule."""
    scheduler = AdaptiveScheduler(cost_model, device_memory_bytes)
    return scheduler.build(shapes, kind, recompute, injection_order)
