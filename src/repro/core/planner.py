"""The DynaPipe per-iteration planner (paper §3–§7).

For every training iteration the planner turns a mini-batch of samples into
one execution plan per data-parallel replica:

1. order the samples and partition them into micro-batches with the DP
   algorithm (§4), using the ``1/|D|`` objective weight under data
   parallelism;
2. balance the micro-batches across data-parallel replicas with the
   Karmarkar–Karp differencing method (§4);
3. pick the cheapest recomputation mode that fits in device memory (§7),
   re-running partitioning under heavier modes if necessary;
4. search micro-batch injection orders by clustering predicted execution
   times and permuting the clusters (§5);
5. build the memory-aware adaptive schedule (§5, Alg. 1), simulate its
   timeline, and plan all communication ahead of time (§6);
6. emit per-device instruction streams together with the planner's
   predictions (iteration time, peak memory) for later comparison against
   the "measured" execution.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.batching.base import MicroBatch
from repro.batching.metrics import PaddingStats, padding_stats
from repro.cluster.network import NetworkModel
from repro.comm.planner import build_instruction_streams
from repro.comm.shapes import TransferShapes
from repro.core.adaptive_schedule import AdaptiveScheduler, ScheduleKind
from repro.core.dp_solver import DPSolution, PartitionError
from repro.core.execution_plan import ExecutionPlan, PlanMetadata
from repro.core.microbatch import DynamicMicroBatcher
from repro.core.microbatch_ordering import OrderingSearchResult, cluster_and_order
from repro.core.ordering import OrderingMethod
from repro.core.recomputation import MODE_PREFERENCE, OutOfMemoryError
from repro.core.replica_balance import karmarkar_karp_partition
from repro.costmodel.cost_model import CostModel
from repro.data.tasks import Sample
from repro.model.memory import RecomputeMode, weight_gradient_bytes
from repro.obs.registry import REGISTRY
from repro.obs.spans import span as _span
from repro.model.transformer import MicroBatchShape
from repro.schedule.cyclic import ScheduleDeadlockError
from repro.simulator.engine import SimulationResult, simulate_schedule
from repro.simulator.incremental import IncrementalOrderSimulator

#: Registry-backed planner counters (``planner.*`` in metric snapshots).
_PLANNER_STATS = REGISTRY.counter_dict(
    "planner",
    (
        "plans",
        "order_searches",
        "order_permutations_evaluated",
        "order_geometry_compiles",
        "order_timeline_solves",
    ),
)


@dataclass
class PlannerConfig:
    """Tunable knobs of the DynaPipe planner.

    Attributes:
        ordering_method: Sample ordering before DP partitioning.
        schedule_kind: Pipeline schedule family to build.
        device_memory_bytes: Usable memory per device (defaults to the cost
            model's device capacity).
        per_microbatch_memory_fraction: Fraction of the activation budget a
            single micro-batch may use during DP partitioning; defaults to
            ``1 / num_stages`` (the 1F1B-style bound of §4).
        dynamic_recompute: Whether to search recomputation modes per
            iteration; when False, ``recompute`` is used unconditionally.
        recompute: Recomputation mode used when ``dynamic_recompute`` is off.
        order_search: Whether to search micro-batch injection orders.
        incremental_order_search: Score permutations with the incremental
            simulator (compile the schedule geometry once, re-solve only the
            duration/order deltas) instead of rebuilding the full schedule
            and timeline per permutation.  Scores are bit-identical either
            way; this knob exists for A/B timing and as an escape hatch.
        num_time_clusters: Number of execution-time clusters for the order
            search (3–4 per the paper).
        max_order_permutations: Cap on evaluated cluster permutations.
        tmax_sample_count: Number of ``t_max`` candidates in the DP.
        max_microbatch_size: Maximum samples per micro-batch.
        stages_same_node: Whether adjacent pipeline stages share a node
            (selects the link class for inter-stage transfer times).
        data_parallel_same_node: Whether data-parallel replicas share a node
            (selects the link class for gradient all-reduce).
        model_comm_overlap: Fraction of the data-parallel all-reduce hidden
            behind computation (Megatron/DeepSpeed overlap gradients with the
            backward pass; 0 = fully exposed).
    """

    ordering_method: OrderingMethod = OrderingMethod.SORT
    schedule_kind: ScheduleKind = ScheduleKind.MEMORY_AWARE_ADAPTIVE
    device_memory_bytes: float | None = None
    per_microbatch_memory_fraction: float | None = None
    dynamic_recompute: bool = True
    recompute: RecomputeMode = RecomputeMode.NONE
    order_search: bool = True
    incremental_order_search: bool = True
    num_time_clusters: int = 3
    max_order_permutations: int = 24
    tmax_sample_count: int = 24
    max_microbatch_size: int = 256
    stages_same_node: bool = True
    data_parallel_same_node: bool = False
    model_comm_overlap: float = 0.5

    # ------------------------------------------------------------------ serialisation

    def to_dict(self) -> dict[str, Any]:
        """Serialise the configuration (enums by value) for worker processes."""
        payload = asdict(self)
        payload["ordering_method"] = self.ordering_method.value
        payload["schedule_kind"] = self.schedule_kind.value
        payload["recompute"] = self.recompute.value
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PlannerConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        payload = dict(payload)
        payload["ordering_method"] = OrderingMethod(payload["ordering_method"])
        payload["schedule_kind"] = ScheduleKind(payload["schedule_kind"])
        payload["recompute"] = RecomputeMode(payload["recompute"])
        return cls(**payload)


@dataclass
class ReplicaPlanResult:
    """Planning artefacts for one data-parallel replica."""

    plan: ExecutionPlan
    micro_batches: list[MicroBatch]
    simulation: SimulationResult
    ordering_search: OrderingSearchResult | None = None


@dataclass
class IterationPlan:
    """Everything the planner produced for one training iteration.

    Attributes:
        replicas: Per-replica plan results.
        recompute: The recomputation mode selected for the iteration.
        predicted_iteration_ms: Predicted iteration time — slowest replica's
            makespan plus the exposed part of the gradient all-reduce.
        data_parallel_comm_ms: Modelled gradient all-reduce time.
        padding: Padding statistics over all micro-batches of the iteration.
        dp_solution: The DP partition solution (order + boundaries); ``None``
            for planners that do not use the DP construction (baselines reuse
            this container).
        planning_time_s: Wall-clock planning time for the whole iteration.
    """

    replicas: list[ReplicaPlanResult]
    recompute: RecomputeMode
    predicted_iteration_ms: float
    data_parallel_comm_ms: float
    padding: PaddingStats
    dp_solution: DPSolution | None
    planning_time_s: float

    @property
    def plans(self) -> list[ExecutionPlan]:
        """Per-replica execution plans."""
        return [replica.plan for replica in self.replicas]

    @property
    def num_microbatches(self) -> int:
        """Total number of micro-batches across replicas."""
        return sum(len(replica.micro_batches) for replica in self.replicas)

    def all_micro_batches(self) -> list[MicroBatch]:
        """All micro-batches of the iteration (replica-major order)."""
        return [mb for replica in self.replicas for mb in replica.micro_batches]

    def to_dict(self) -> dict[str, Any]:
        """Serialise the iteration plan to a JSON-compatible payload.

        This is the payload a planner-pool worker ships back to the parent:
        per-replica :meth:`~repro.core.execution_plan.ExecutionPlan.to_dict`
        plans (destined for the instruction store) plus the iteration-level
        results a training loop needs (predictions, padding statistics,
        recomputation mode).  The in-memory simulation and micro-batch
        objects are deliberately not serialised — executors re-derive
        everything they need from the instruction streams.
        """
        return {
            "replicas": [plan.to_dict() for plan in self.plans],
            "recompute": self.recompute.value,
            "predicted_iteration_ms": self.predicted_iteration_ms,
            "data_parallel_comm_ms": self.data_parallel_comm_ms,
            "padding": self.padding.to_dict(),
            "num_microbatches": self.num_microbatches,
            "planning_time_s": self.planning_time_s,
        }


class DynaPipePlanner:
    """Per-iteration planner combining all of DynaPipe's techniques.

    Args:
        cost_model: Cost model of one replica's pipeline (defines the number
            of stages and the tensor-parallel degree).
        data_parallel_size: Number of data-parallel model replicas.
        config: Planner configuration.
        network: Communication model used for inter-stage transfers and the
            gradient all-reduce.
    """

    def __init__(
        self,
        cost_model: CostModel,
        data_parallel_size: int = 1,
        config: PlannerConfig | None = None,
        network: NetworkModel | None = None,
    ) -> None:
        if data_parallel_size < 1:
            raise ValueError(f"data_parallel_size must be >= 1, got {data_parallel_size}")
        self.cost_model = cost_model
        self.data_parallel_size = data_parallel_size
        self.config = config or PlannerConfig()
        self.network = network or NetworkModel()
        self.device_memory_bytes = (
            self.config.device_memory_bytes
            if self.config.device_memory_bytes is not None
            else cost_model.device_spec.memory_capacity
        )
        if cost_model.min_activation_budget_bytes(self.device_memory_bytes) <= 0:
            raise OutOfMemoryError(
                f"static memory of {cost_model.config.name} with "
                f"{cost_model.num_stages} pipeline stages and tensor parallelism "
                f"{cost_model.tensor_parallel} exceeds the device memory of "
                f"{self.device_memory_bytes / 1e9:.1f} GB; increase pipeline or "
                "tensor parallelism"
            )
        self.scheduler = AdaptiveScheduler(cost_model, self.device_memory_bytes)
        # One batcher for all iterations and recomputation-mode retries: its
        # window-shape geometry cache and the cost model's shape-keyed caches
        # make retries and repeated iterations reuse all prior cost queries.
        self._batcher = DynamicMicroBatcher(
            self.cost_model,
            ordering=self.config.ordering_method,
            recompute=self.config.recompute,
            per_microbatch_memory_bytes=self._per_microbatch_memory_bytes(),
            sum_weight=1.0 / self.data_parallel_size,
            tmax_sample_count=self.config.tmax_sample_count,
            max_microbatch_size=self.config.max_microbatch_size,
        )

    # ------------------------------------------------------------------ serialisation

    def to_spec(self) -> dict[str, Any]:
        """Serialise everything needed to rebuild this planner in another process.

        The spec embeds the cost model's full profile database (via
        :func:`repro.costmodel.serialization.cost_model_to_dict`), so
        :meth:`from_spec` never re-profiles and a rebuilt planner produces
        bit-identical plans.
        """
        from repro.costmodel.serialization import cost_model_to_dict

        return {
            "cost_model": cost_model_to_dict(self.cost_model),
            "data_parallel_size": self.data_parallel_size,
            "config": self.config.to_dict(),
            "network": self.network.to_dict(),
        }

    @classmethod
    def from_spec(cls, spec: dict[str, Any]) -> "DynaPipePlanner":
        """Rebuild a planner from :meth:`to_spec` output."""
        from repro.costmodel.serialization import cost_model_from_dict

        return cls(
            cost_model=cost_model_from_dict(spec["cost_model"]),
            data_parallel_size=int(spec["data_parallel_size"]),
            config=PlannerConfig.from_dict(spec["config"]),
            network=NetworkModel.from_dict(spec["network"]),
        )

    # ------------------------------------------------------------------ helpers

    def _per_microbatch_memory_bytes(self) -> float:
        budget = self.cost_model.min_activation_budget_bytes(self.device_memory_bytes)
        fraction = self.config.per_microbatch_memory_fraction
        if fraction is None:
            fraction = 1.0 / self.cost_model.num_stages
        return budget * fraction

    def _comm_time_fn(self, transfer_shapes: TransferShapes):
        """Inter-stage transfer time callback for the timeline simulation."""
        same_node = self.config.stages_same_node

        def comm_time(microbatch: int, src: int, dst: int, is_gradient: bool) -> float:
            if is_gradient:
                nbytes = transfer_shapes.grad_bytes(microbatch, src)
            else:
                nbytes = transfer_shapes.act_bytes(microbatch, src)
            return self.network.p2p_time_ms(nbytes, same_node=same_node)

        return comm_time

    def data_parallel_comm_ms(self) -> float:
        """Gradient all-reduce time across data-parallel replicas."""
        if self.data_parallel_size == 1:
            return 0.0
        per_stage_layers = max(
            assignment.total_layers for assignment in self.cost_model.assignments
        )
        grad_bytes = weight_gradient_bytes(
            self.cost_model.config, max(per_stage_layers, 1), self.cost_model.tensor_parallel
        )
        return self.network.allreduce_time_ms(
            grad_bytes,
            self.data_parallel_size,
            same_node=self.config.data_parallel_same_node,
        )

    def _partition(self, samples: Sequence[Sample], mode: RecomputeMode):
        """Run sample ordering + DP partitioning under ``mode``."""
        result, solution = self._batcher.split_with_solution(samples, recompute=mode)
        assert solution is not None
        return result.micro_batches, solution

    def _schedule_replica(
        self,
        shapes: Sequence[MicroBatchShape],
        mode: RecomputeMode,
        transfer_shapes: TransferShapes,
        injection_order: Sequence[int] | None = None,
    ):
        """Build + simulate the configured schedule for one replica."""
        build = self.scheduler.build(
            shapes,
            kind=self.config.schedule_kind,
            recompute=mode,
            injection_order=injection_order,
        )
        static = [
            self.cost_model.stage_static_bytes(j) for j in range(self.cost_model.num_stages)
        ]
        simulation = simulate_schedule(
            build.schedule,
            build.durations,
            comm_time_fn=self._comm_time_fn(transfer_shapes),
            activation_bytes=build.activation_bytes,
            static_bytes=static,
        )
        return build, simulation

    def _replica_feasible(self, simulation: SimulationResult) -> bool:
        return all(
            peak <= self.device_memory_bytes * (1.0 + 1e-9)
            for peak in simulation.peak_activation_bytes
        )

    # ------------------------------------------------------------------ planning

    def plan(self, samples: Sequence[Sample], iteration: int = 0) -> IterationPlan:
        """Produce the execution plans for one mini-batch.

        Raises:
            OutOfMemoryError: If no recomputation mode fits the iteration.
        """
        with _span("plan", iteration=iteration, num_samples=len(samples)):
            return self._plan_impl(samples, iteration)

    def _plan_impl(self, samples: Sequence[Sample], iteration: int) -> IterationPlan:
        if not samples:
            raise ValueError("cannot plan an iteration with no samples")
        start_time = time.perf_counter()
        _PLANNER_STATS["plans"] += 1

        modes = MODE_PREFERENCE if self.config.dynamic_recompute else (self.config.recompute,)
        failures: dict[RecomputeMode, str] = {}
        chosen = None
        for mode in modes:
            try:
                micro_batches, solution = self._partition(samples, mode)
            except PartitionError as exc:
                failures[mode] = str(exc)
                continue
            # Balance across data-parallel replicas.
            times = [
                float(t)
                for t in self.cost_model.microbatch_times_ms(
                    [mb.shape() for mb in micro_batches], mode
                )
            ]
            assignment = karmarkar_karp_partition(times, self.data_parallel_size)
            replica_groups = [
                [micro_batches[i] for i in group] for group in assignment.groups
            ]
            # Every replica must hold at least one micro-batch to keep the
            # pipeline (and gradient synchronisation) well formed.
            if any(not group for group in replica_groups) and len(micro_batches) >= self.data_parallel_size:
                replica_groups = self._rebalance_nonempty(micro_batches, times)
            if any(not group for group in replica_groups):
                failures[mode] = (
                    f"only {len(micro_batches)} micro-batches for "
                    f"{self.data_parallel_size} data-parallel replicas"
                )
                continue
            # Schedule + simulate each replica to verify memory feasibility.
            replica_results = []
            feasible = True
            for group in replica_groups:
                shapes = [mb.shape() for mb in group]
                transfer_shapes = TransferShapes.from_cost_model(self.cost_model, shapes)
                try:
                    build, simulation = self._schedule_replica(shapes, mode, transfer_shapes)
                except ScheduleDeadlockError as exc:
                    failures[mode] = f"unschedulable: {exc}"
                    feasible = False
                    break
                if not self._replica_feasible(simulation):
                    failures[mode] = (
                        f"peak memory {max(simulation.peak_activation_bytes) / 1e9:.2f} GB "
                        f"exceeds capacity {self.device_memory_bytes / 1e9:.2f} GB"
                    )
                    feasible = False
                    break
                replica_results.append((group, shapes, transfer_shapes, build, simulation))
            if feasible:
                chosen = (mode, micro_batches, solution, replica_results)
                break
        if chosen is None:
            raise OutOfMemoryError(
                "no recomputation mode produced a feasible plan: "
                + "; ".join(f"{mode.value}: {reason}" for mode, reason in failures.items())
            )

        mode, micro_batches, solution, replica_results = chosen
        replicas: list[ReplicaPlanResult] = []
        for replica_index, (group, shapes, transfer_shapes, build, simulation) in enumerate(
            replica_results
        ):
            ordering_result = None
            if self.config.order_search and len(shapes) > 1:
                ordering_result = self._search_injection_order(shapes, mode, transfer_shapes)
                if ordering_result.order != list(range(len(shapes))):
                    build, simulation = self._schedule_replica(
                        shapes, mode, transfer_shapes, injection_order=ordering_result.order
                    )
            streams = build_instruction_streams(
                build.schedule,
                simulation.op_times,
                shapes,
                transfer_shapes,
                recompute=mode,
            )
            metadata = PlanMetadata(
                iteration=iteration,
                replica=replica_index,
                schedule_name=build.schedule.name,
                recompute=mode,
                predicted_makespan_ms=simulation.makespan_ms,
                predicted_peak_memory_bytes=list(simulation.peak_activation_bytes),
                num_microbatches=len(shapes),
            )
            plan = ExecutionPlan(
                device_instructions=streams,
                microbatch_shapes=list(shapes),
                metadata=metadata,
            )
            replicas.append(
                ReplicaPlanResult(
                    plan=plan,
                    micro_batches=list(group),
                    simulation=simulation,
                    ordering_search=ordering_result,
                )
            )

        dp_comm = self.data_parallel_comm_ms()
        exposed_dp_comm = dp_comm * (1.0 - self.config.model_comm_overlap)
        predicted = max(r.simulation.makespan_ms for r in replicas) + exposed_dp_comm
        planning_time = time.perf_counter() - start_time
        for replica in replicas:
            replica.plan.metadata.planning_time_s = planning_time

        return IterationPlan(
            replicas=replicas,
            recompute=mode,
            predicted_iteration_ms=predicted,
            data_parallel_comm_ms=dp_comm,
            padding=padding_stats(micro_batches),
            dp_solution=solution,
            planning_time_s=planning_time,
        )

    # ------------------------------------------------------------------ internals

    def _rebalance_nonempty(self, micro_batches, times):
        """Fallback balancing guaranteeing every replica gets >= 1 micro-batch.

        Longest-processing-time greedy assignment with a non-emptiness
        constraint; only used when Karmarkar–Karp leaves a replica empty
        (possible when there are very few micro-batches).
        """
        order = sorted(range(len(micro_batches)), key=lambda i: times[i], reverse=True)
        groups: list[list] = [[] for _ in range(self.data_parallel_size)]
        loads = [0.0] * self.data_parallel_size
        for rank, index in enumerate(order):
            if rank < self.data_parallel_size:
                target = rank
            else:
                target = min(range(self.data_parallel_size), key=lambda d: loads[d])
            groups[target].append(micro_batches[index])
            loads[target] += times[index]
        return groups

    def _order_search_simulator(
        self,
        shapes: Sequence[MicroBatchShape],
        mode: RecomputeMode,
        transfer_shapes: TransferShapes,
    ) -> IncrementalOrderSimulator:
        """Build the incremental scorer's duration/comm/activation arrays.

        All values come from the same cost-model and network queries the
        legacy build-and-simulate path performs, so scores are bit-identical.
        """
        shapes = list(shapes)
        num_stages = self.cost_model.num_stages
        num_microbatches = len(shapes)
        forward_ms = np.empty((num_microbatches, num_stages))
        backward_ms = np.empty((num_microbatches, num_stages))
        activation = np.empty((num_microbatches, num_stages))
        for stage in range(num_stages):
            costs = self.cost_model.stage_costs_many(stage, shapes, mode)
            for index, cost in enumerate(costs):
                forward_ms[index, stage] = cost.forward_ms
                backward_ms[index, stage] = cost.backward_ms
                activation[index, stage] = cost.activation_bytes
        same_node = self.config.stages_same_node
        act_comm = np.zeros((num_microbatches, num_stages))
        grad_comm = np.zeros((num_microbatches, num_stages))
        for microbatch in range(num_microbatches):
            for src in range(num_stages - 1):
                act_comm[microbatch, src] = self.network.p2p_time_ms(
                    transfer_shapes.act_bytes(microbatch, src), same_node=same_node
                )
            for src in range(1, num_stages):
                grad_comm[microbatch, src] = self.network.p2p_time_ms(
                    transfer_shapes.grad_bytes(microbatch, src), same_node=same_node
                )
        limits = (
            self.scheduler.memory_limits()
            if self.config.schedule_kind is ScheduleKind.MEMORY_AWARE_ADAPTIVE
            else None
        )
        static = [
            self.cost_model.stage_static_bytes(j) for j in range(num_stages)
        ]
        return IncrementalOrderSimulator(
            num_stages,
            activation,
            forward_ms,
            backward_ms,
            act_comm,
            grad_comm,
            memory_limits=limits,
            static_bytes=static,
            device_memory_bytes=self.device_memory_bytes,
        )

    def _search_injection_order(
        self,
        shapes: Sequence[MicroBatchShape],
        mode: RecomputeMode,
        transfer_shapes: TransferShapes,
    ) -> OrderingSearchResult:
        """Cluster-permutation search over injection orders (§5).

        By default permutations are scored with the incremental simulator:
        the cyclic slot structure is derived per permutation with the lean
        slot scheduler, the dependency DAG is compiled once per distinct
        structure, and each candidate is a pure array re-solve.  The legacy
        path (rebuild the full schedule + timeline per permutation) is kept
        behind ``PlannerConfig.incremental_order_search=False`` and for the
        1F1B schedule, which ignores the injection order.
        """
        times = [
            float(t) for t in self.cost_model.microbatch_times_ms(list(shapes), mode)
        ]
        simulator: IncrementalOrderSimulator | None = None
        if (
            self.config.incremental_order_search
            and self.config.schedule_kind is not ScheduleKind.ONE_F_ONE_B
        ):
            simulator = self._order_search_simulator(shapes, mode, transfer_shapes)
            score = simulator.score
        else:
            comm_time = self._comm_time_fn(transfer_shapes)
            static = [
                self.cost_model.stage_static_bytes(j)
                for j in range(self.cost_model.num_stages)
            ]

            def score(order: Sequence[int]) -> float:
                try:
                    build = self.scheduler.build(
                        shapes,
                        kind=self.config.schedule_kind,
                        recompute=mode,
                        injection_order=order,
                    )
                except ScheduleDeadlockError:
                    return float("inf")
                simulation = simulate_schedule(
                    build.schedule,
                    build.durations,
                    comm_time_fn=comm_time,
                    activation_bytes=build.activation_bytes,
                    static_bytes=static,
                )
                if not self._replica_feasible(simulation):
                    return float("inf")
                return simulation.makespan_ms

        with _span("order_search", num_microbatches=len(times)):
            result = cluster_and_order(
                times,
                score,
                num_clusters=self.config.num_time_clusters,
                max_permutations=self.config.max_order_permutations,
            )
        if simulator is not None:
            result.geometry_compiles = simulator.compiles
            result.timeline_solves = simulator.solves
        _PLANNER_STATS["order_searches"] += 1
        _PLANNER_STATS["order_permutations_evaluated"] += result.evaluated
        if result.geometry_compiles is not None:
            _PLANNER_STATS["order_geometry_compiles"] += result.geometry_compiles
        if result.timeline_solves is not None:
            _PLANNER_STATS["order_timeline_solves"] += result.timeline_solves
        return result
