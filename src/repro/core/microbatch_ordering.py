"""Micro-batch injection ordering (paper §5, "Micro-batch ordering").

The order in which micro-batches are injected into the pipeline affects
throughput when their execution times differ.  Modelling this exactly is
intractable, so the paper clusters micro-batches by predicted execution
time, permutes the *cluster order* (a small factorial search — 3 or 4
clusters suffice), and keeps the order with the lowest simulated makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Callable, Sequence

import numpy as np

#: Scores an injection order (permutation of micro-batch indices) -> makespan.
OrderScoreFn = Callable[[Sequence[int]], float]


@dataclass
class OrderingSearchResult:
    """Result of the cluster-permutation search.

    Attributes:
        order: The selected injection order (micro-batch indices).
        makespan_ms: Simulated makespan of the selected order.
        evaluated: Number of candidate orders scored.
        cluster_sizes: Sizes of the execution-time clusters used.
        geometry_compiles: Distinct schedule geometries compiled during the
            search (incremental scoring only; ``None`` on the legacy path).
        timeline_solves: Timeline solves performed during the search
            (incremental scoring only; ``None`` on the legacy path).
    """

    order: list[int]
    makespan_ms: float
    evaluated: int
    cluster_sizes: list[int]
    geometry_compiles: int | None = None
    timeline_solves: int | None = None


def cluster_by_time(times: Sequence[float], num_clusters: int) -> list[list[int]]:
    """Group micro-batch indices into ``num_clusters`` clusters of similar
    predicted execution time.

    Clustering is one-dimensional, so quantile bucketing over the sorted
    times is both simple and as good as k-means for this purpose.  Clusters
    are returned ordered by increasing execution time; indices within a
    cluster keep their original relative order.
    """
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    n = len(times)
    if n == 0:
        return []
    num_clusters = min(num_clusters, n)
    order = sorted(range(n), key=lambda i: times[i])
    boundaries = np.array_split(np.array(order), num_clusters)
    clusters = []
    for bucket in boundaries:
        members = sorted(int(i) for i in bucket)
        if members:
            clusters.append(members)
    return clusters


def cluster_and_order(
    times: Sequence[float],
    score_fn: OrderScoreFn,
    num_clusters: int = 3,
    max_permutations: int = 24,
) -> OrderingSearchResult:
    """Search cluster-order permutations for the best injection order.

    Args:
        times: Predicted execution time of each micro-batch.
        score_fn: Callback scoring a full injection order (lower is better);
            typically a simulation of the adaptive schedule.
        num_clusters: Number of execution-time clusters (3–4 per the paper).
        max_permutations: Safety cap on the number of permutations evaluated.

    Returns:
        The best order found together with search statistics.
    """
    n = len(times)
    if n == 0:
        raise ValueError("at least one micro-batch is required")
    if n == 1:
        return OrderingSearchResult(order=[0], makespan_ms=score_fn([0]), evaluated=1, cluster_sizes=[1])

    clusters = cluster_by_time(times, num_clusters)
    best_order: list[int] | None = None
    best_score = float("inf")
    evaluated = 0
    for permutation in permutations(range(len(clusters))):
        if evaluated >= max_permutations:
            break
        candidate: list[int] = []
        for cluster_index in permutation:
            candidate.extend(clusters[cluster_index])
        score = score_fn(candidate)
        evaluated += 1
        if score < best_score:
            best_score = score
            best_order = candidate
    assert best_order is not None
    return OrderingSearchResult(
        order=best_order,
        makespan_ms=best_score,
        evaluated=evaluated,
        cluster_sizes=[len(cluster) for cluster in clusters],
    )
