"""Dynamic-programming micro-batch partitioning (paper §4, Eq. 1/2).

Given an *ordered* list of samples, the partitioner chooses split points so
that consecutive samples form micro-batches minimising the modelled
iteration time

    (c - 1) · max_i t(M_i)  +  w · Σ_i t(M_i)

where ``c`` is the number of pipeline stages, ``t(M)`` is the forward +
backward time of micro-batch ``M`` on the bottleneck stage (from the cost
model) and ``w`` is 1 for a single pipeline or ``1 / |D|`` when the
micro-batches will later be spread over ``|D|`` data-parallel replicas.

Following the paper, the outer minimisation over the maximum micro-batch
time ``t_max`` enumerates candidate values (sampled at fixed intervals to
bound the O(N⁴) exact formulation), and for each candidate an O(N·W) DP
finds the best partition whose micro-batches all respect ``t_max`` and the
per-micro-batch memory limit.

Two execution paths are provided:

* the scalar path (``time_fn`` / ``feasible_fn`` callbacks), the reference
  implementation, which lazily memoises window costs; and
* the vectorized fast path (``cost_table``), which runs the inner DP against
  a dense :class:`WindowCostTable` of precomputed window times and
  feasibility flags (built by
  :class:`~repro.core.microbatch.DynamicMicroBatcher` from one batched
  cost-model query over the unique window shapes) and advances the
  independent per-candidate DP passes together over one
  ``(candidate, end)`` grid instead of looping candidates in Python.

Both paths produce identical partitions; the fast path removes every
per-window Python-level cost-model call from the DP inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

#: Cost of the micro-batch formed from the half-open index range [start, end).
MicroBatchCostFn = Callable[[int, int], float]
#: Feasibility (memory limit) of the micro-batch formed from [start, end).
MicroBatchFeasibleFn = Callable[[int, int], bool]


class PartitionError(ValueError):
    """Raised when no feasible partition exists (e.g. a single sample's
    micro-batch already violates the memory limit)."""


@dataclass
class DPSolution:
    """Result of :func:`solve_partition`.

    Attributes:
        boundaries: Half-open index ranges ``(start, end)`` of the chosen
            micro-batches, in order.
        times: Modelled execution time of each chosen micro-batch.
        objective: Value of the optimised objective for the chosen partition.
        tmax_used: The ``t_max`` candidate that produced the best partition.
        candidates_evaluated: Number of ``t_max`` candidates tried.
        cost_evaluations: Number of cost-function evaluations performed
            (reported by the planning-time experiment, Fig. 17).  On the
            vectorized path this counts the unique window shapes costed by
            the batched cost-model query.
    """

    boundaries: list[tuple[int, int]]
    times: list[float]
    objective: float
    tmax_used: float
    candidates_evaluated: int = 0
    cost_evaluations: int = 0

    @property
    def num_microbatches(self) -> int:
        """Number of micro-batches in the partition."""
        return len(self.boundaries)

    @property
    def max_time(self) -> float:
        """Largest micro-batch time in the partition."""
        return max(self.times) if self.times else 0.0

    @property
    def total_time(self) -> float:
        """Sum of micro-batch times in the partition."""
        return sum(self.times)


@dataclass
class WindowCostTable:
    """Dense window time / feasibility tables for the vectorized DP.

    Row ``start``, column ``size - 1`` describes the window
    ``[start, start + size)``.  Entries beyond the sample count hold ``inf``
    time and ``False`` feasibility.

    Attributes:
        times: ``(num_samples, max_window)`` window execution times in ms.
        feasible: ``(num_samples, max_window)`` memory-feasibility flags.
        unique_shape_evaluations: Number of unique window shapes that were
            costed to fill the table (the fast path's ``cost_evaluations``).
    """

    times: np.ndarray
    feasible: np.ndarray
    unique_shape_evaluations: int = 0

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.feasible = np.asarray(self.feasible, dtype=bool)
        if self.times.shape != self.feasible.shape or self.times.ndim != 2:
            raise ValueError(
                f"times {self.times.shape} and feasible {self.feasible.shape} must "
                "be equal 2-D shapes"
            )

    @property
    def num_samples(self) -> int:
        """Number of samples the table covers."""
        return self.times.shape[0]

    @property
    def max_window(self) -> int:
        """Largest window size the table covers."""
        return self.times.shape[1]

    def time(self, start: int, end: int) -> float:
        """Window time of ``[start, end)``."""
        return float(self.times[start, end - start - 1])

    def is_feasible(self, start: int, end: int) -> bool:
        """Whether ``[start, end)`` respects the memory limit."""
        return bool(self.feasible[start, end - start - 1])


class _CostCache:
    """Memoises the window cost/feasibility functions and counts calls."""

    def __init__(self, time_fn: MicroBatchCostFn, feasible_fn: MicroBatchFeasibleFn | None):
        self._time_fn = time_fn
        self._feasible_fn = feasible_fn
        self._time: dict[tuple[int, int], float] = {}
        self._feasible: dict[tuple[int, int], bool] = {}
        self.evaluations = 0

    def time(self, start: int, end: int) -> float:
        key = (start, end)
        if key not in self._time:
            self._time[key] = float(self._time_fn(start, end))
            self.evaluations += 1
        return self._time[key]

    def feasible(self, start: int, end: int) -> bool:
        if self._feasible_fn is None:
            return True
        key = (start, end)
        if key not in self._feasible:
            self._feasible[key] = bool(self._feasible_fn(start, end))
        return self._feasible[key]


def _tmax_candidates(
    time: MicroBatchCostFn,
    num_samples: int,
    max_microbatch_size: int,
    sample_count: int,
) -> list[float]:
    """Candidate values for the maximum micro-batch execution time.

    The exact formulation enumerates all O(N²) window times; the paper's
    speed-up samples the range at fixed intervals.  We probe window times at
    geometrically growing window sizes from every few start positions, then
    thin the sorted unique values down to ``sample_count`` candidates.  The
    smallest candidate is always the largest singleton time (any smaller
    ``t_max`` admits no feasible partition).
    """
    singleton_max = max(time(i, i + 1) for i in range(num_samples))
    probed: set[float] = set()
    stride = max(1, num_samples // 64)
    for start in range(0, num_samples, stride):
        size = 1
        while size <= max_microbatch_size and start + size <= num_samples:
            window_time = time(start, start + size)
            if window_time >= singleton_max:
                probed.add(window_time)
            size *= 2
    probed.add(singleton_max)
    values = sorted(probed)
    if len(values) <= sample_count:
        return values
    if sample_count <= 1:
        # The smallest probed value (the largest singleton time) is the one
        # candidate guaranteed to admit a partition.
        return [values[0]]
    # Thin to roughly evenly spaced candidates over the sorted list, always
    # keeping the smallest and largest.
    step = (len(values) - 1) / (sample_count - 1)
    picked = [values[int(round(i * step))] for i in range(sample_count)]
    return sorted(set(picked))


def _partition_for_tmax(
    cache: _CostCache,
    num_samples: int,
    tmax: float,
    max_microbatch_size: int,
) -> tuple[list[tuple[int, int]], list[float]] | None:
    """Optimal partition with every micro-batch time <= ``tmax`` (Eq. 2).

    Returns ``None`` when no feasible partition exists for this ``tmax``.
    """
    best_cost = [float("inf")] * (num_samples + 1)
    best_prev = [-1] * (num_samples + 1)
    best_cost[0] = 0.0
    for end in range(1, num_samples + 1):
        window_limit = min(max_microbatch_size, end)
        for size in range(1, window_limit + 1):
            start = end - size
            window_time = cache.time(start, end)
            if window_time > tmax:
                # Window times grow with window size, so larger windows
                # cannot satisfy the bound either.
                break
            if not cache.feasible(start, end):
                break
            if best_cost[start] == float("inf"):
                continue
            candidate = best_cost[start] + window_time
            if candidate < best_cost[end]:
                best_cost[end] = candidate
                best_prev[end] = start
    if best_cost[num_samples] == float("inf"):
        return None
    boundaries: list[tuple[int, int]] = []
    end = num_samples
    while end > 0:
        start = best_prev[end]
        boundaries.append((start, end))
        end = start
    boundaries.reverse()
    times = [cache.time(start, end) for start, end in boundaries]
    return boundaries, times


def _partitions_for_tmax_batch(
    end_times: np.ndarray,
    end_feasible: np.ndarray,
    num_samples: int,
    tmaxes: Sequence[float],
) -> list[tuple[list[tuple[int, int]], list[float]] | None]:
    """Eq. 2 DP for *all* ``t_max`` candidates in one (candidate, end) pass.

    The per-candidate DP passes are independent (ROADMAP: "Parallel t_max
    candidates"), so instead of looping candidates in Python the recurrence
    advances a ``(num_candidates, num_samples + 1)`` cost matrix end by end:
    each step evaluates every candidate's admissible window sizes with one
    batch of numpy operations.  Arithmetic, admissible-prefix computation and
    argmin tie-breaking (first minimum → smallest window) are exactly those
    of the single-candidate recurrence, so each candidate's partition is
    bit-identical to running it alone.

    Returns one ``(boundaries, times)`` pair — or ``None`` when infeasible —
    per candidate, in input order.
    """
    num_candidates = len(tmaxes)
    max_window = end_times.shape[1]
    bounds = np.asarray(list(tmaxes), dtype=float)[:, None]
    best_cost = np.full((num_candidates, num_samples + 1), np.inf)
    best_prev = np.full((num_candidates, num_samples + 1), -1, dtype=np.int64)
    best_cost[:, 0] = 0.0
    rows = np.arange(num_candidates)
    for end in range(1, num_samples + 1):
        row_times = end_times[end - 1]
        # Admissible sizes form a contiguous prefix (window times grow with
        # window size); logical-and accumulation stops at the first violation.
        admissible = (row_times[None, :] <= bounds) & end_feasible[end - 1][None, :]
        prefix_mask = np.logical_and.accumulate(admissible, axis=1)
        # Window size s ends at `end` and starts at `end - s`; sizes
        # 1..min(max_window, end) map onto best_cost[:, end - 1 .. end - s],
        # i.e. a reversed slice (padded with inf for sizes larger than end).
        width = min(max_window, end)
        prev_cost = np.full((num_candidates, max_window), np.inf)
        prev_cost[:, :width] = best_cost[:, end - width : end][:, ::-1]
        candidates = np.where(prefix_mask, prev_cost + row_times[None, :], np.inf)
        pick = np.argmin(candidates, axis=1)
        values = candidates[rows, pick]
        update = np.isfinite(values)
        best_cost[update, end] = values[update]
        best_prev[update, end] = end - (pick[update] + 1)

    results: list[tuple[list[tuple[int, int]], list[float]] | None] = []
    for c in range(num_candidates):
        if not np.isfinite(best_cost[c, num_samples]):
            results.append(None)
            continue
        boundaries: list[tuple[int, int]] = []
        end = num_samples
        while end > 0:
            start = int(best_prev[c, end])
            boundaries.append((start, end))
            end = start
        boundaries.reverse()
        times = [float(end_times[end - 1, end - start - 1]) for start, end in boundaries]
        results.append((boundaries, times))
    return results


def _end_major_tables(table: WindowCostTable) -> tuple[np.ndarray, np.ndarray]:
    """Re-index the (start, size) tables by (end, size) for the DP inner loop."""
    n, max_window = table.num_samples, table.max_window
    ends = np.arange(1, n + 1)[:, None]
    sizes = np.arange(1, max_window + 1)[None, :]
    starts = ends - sizes
    valid = starts >= 0
    clipped = np.where(valid, starts, 0)
    end_times = np.where(valid, table.times[clipped, sizes - 1], np.inf)
    end_feasible = valid & table.feasible[clipped, sizes - 1]
    return end_times, end_feasible


def solve_partition(
    num_samples: int,
    num_stages: int,
    time_fn: MicroBatchCostFn | None = None,
    feasible_fn: MicroBatchFeasibleFn | None = None,
    sum_weight: float = 1.0,
    max_microbatch_size: int = 512,
    tmax_sample_count: int = 24,
    cost_table: WindowCostTable | None = None,
) -> DPSolution:
    """Find the micro-batch partition minimising the Eq. 1 objective.

    Args:
        num_samples: Number of (already ordered) samples.
        num_stages: Number of pipeline stages ``c``.
        time_fn: Window time ``t(M)`` for a half-open sample index range
            (scalar path; ignored when ``cost_table`` is given).
        feasible_fn: Optional memory-limit check for a window (scalar path).
        sum_weight: Weight of the Σ t(M) term (``1/|D|`` under data parallelism).
        max_microbatch_size: Upper bound on samples per micro-batch (bounds
            the DP inner loop; generous by default).
        tmax_sample_count: Number of ``t_max`` candidates to evaluate.
        cost_table: Precomputed dense window costs; selects the vectorized
            fast path.

    Raises:
        PartitionError: If even single-sample micro-batches are infeasible.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    if sum_weight <= 0:
        raise ValueError(f"sum_weight must be > 0, got {sum_weight}")
    if max_microbatch_size < 1:
        raise ValueError(f"max_microbatch_size must be >= 1, got {max_microbatch_size}")
    if cost_table is None and time_fn is None:
        raise ValueError("either time_fn or cost_table is required")

    if cost_table is not None:
        return _solve_partition_table(
            cost_table,
            num_samples,
            num_stages,
            sum_weight,
            max_microbatch_size,
            tmax_sample_count,
        )

    cache = _CostCache(time_fn, feasible_fn)
    for i in range(num_samples):
        if not cache.feasible(i, i + 1):
            raise PartitionError(
                f"sample {i} alone exceeds the per-micro-batch memory limit; "
                "increase the device memory limit or enable recomputation"
            )

    candidates = _tmax_candidates(
        cache.time, num_samples, max_microbatch_size, tmax_sample_count
    )

    best: DPSolution | None = None
    for tmax in candidates:
        result = _partition_for_tmax(cache, num_samples, tmax, max_microbatch_size)
        if result is None:
            continue
        boundaries, times = result
        objective = (num_stages - 1) * max(times) + sum_weight * sum(times)
        if best is None or objective < best.objective:
            best = DPSolution(
                boundaries=boundaries,
                times=times,
                objective=objective,
                tmax_used=tmax,
            )
    if best is None:
        raise PartitionError(
            "no feasible partition found for any t_max candidate; this indicates "
            "an inconsistency between the time and feasibility functions"
        )
    best.candidates_evaluated = len(candidates)
    best.cost_evaluations = cache.evaluations
    return best


def _solve_partition_table(
    table: WindowCostTable,
    num_samples: int,
    num_stages: int,
    sum_weight: float,
    max_microbatch_size: int,
    tmax_sample_count: int,
) -> DPSolution:
    """Vectorized fast path of :func:`solve_partition`."""
    if table.num_samples != num_samples:
        raise ValueError(
            f"cost table covers {table.num_samples} samples, expected {num_samples}"
        )
    if table.max_window < min(max_microbatch_size, num_samples):
        raise ValueError(
            f"cost table max window {table.max_window} is smaller than "
            f"max_microbatch_size {max_microbatch_size}"
        )

    singleton_feasible = table.feasible[:, 0]
    if not singleton_feasible.all():
        index = int(np.argmin(singleton_feasible))
        raise PartitionError(
            f"sample {index} alone exceeds the per-micro-batch memory limit; "
            "increase the device memory limit or enable recomputation"
        )

    candidates = _tmax_candidates(
        table.time, num_samples, max_microbatch_size, tmax_sample_count
    )

    window = min(max_microbatch_size, num_samples, table.max_window)
    trimmed = WindowCostTable(
        times=table.times[:, :window],
        feasible=table.feasible[:, :window],
        unique_shape_evaluations=table.unique_shape_evaluations,
    )
    end_times, end_feasible = _end_major_tables(trimmed)

    # All candidate DP passes advance together in one (candidate, end) grid;
    # the selection below scans candidates in their original (sorted) order,
    # so the winner matches the sequential loop exactly.
    results = _partitions_for_tmax_batch(end_times, end_feasible, num_samples, candidates)

    best: DPSolution | None = None
    for tmax, result in zip(candidates, results):
        if result is None:
            continue
        boundaries, times = result
        objective = (num_stages - 1) * max(times) + sum_weight * sum(times)
        if best is None or objective < best.objective:
            best = DPSolution(
                boundaries=boundaries,
                times=times,
                objective=objective,
                tmax_used=tmax,
            )
    if best is None:
        raise PartitionError(
            "no feasible partition found for any t_max candidate; this indicates "
            "an inconsistency between the time and feasibility functions"
        )
    best.candidates_evaluated = len(candidates)
    best.cost_evaluations = table.unique_shape_evaluations
    return best
