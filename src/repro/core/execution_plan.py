"""Execution plans (paper §3).

An execution plan is everything one executor (pipeline of one data-parallel
replica) needs for a training iteration: per-device instruction streams,
micro-batch shapes, the recomputation mode and the predictions the planner
made (iteration time, peak memory) so that they can later be compared with
the measured execution (Fig. 17/18).  Plans serialise to JSON-compatible
dictionaries for the instruction store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.instructions.ops import PipelineInstruction
from repro.instructions.serialization import instructions_from_dicts, instructions_to_dicts
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape


@dataclass
class PlanMetadata:
    """Planner predictions and bookkeeping attached to an execution plan.

    Attributes:
        iteration: Training iteration index the plan belongs to.
        replica: Data-parallel replica index the plan targets.
        schedule_name: Schedule family used (``"1f1b"``, ``"memory-aware-adaptive"``...).
        recompute: Recomputation mode selected for the iteration.
        predicted_makespan_ms: Planner's simulated iteration time.
        predicted_peak_memory_bytes: Planner's per-stage peak memory estimate.
        num_microbatches: Number of micro-batches in the plan.
        planning_time_s: Wall-clock time spent planning this replica's plan.
    """

    iteration: int
    replica: int
    schedule_name: str
    recompute: RecomputeMode
    predicted_makespan_ms: float
    predicted_peak_memory_bytes: list[float] = field(default_factory=list)
    num_microbatches: int = 0
    planning_time_s: float = 0.0


@dataclass
class ExecutionPlan:
    """Per-replica execution plan: instruction streams plus metadata.

    Attributes:
        device_instructions: One instruction list per pipeline stage.
        microbatch_shapes: Padded shape of each micro-batch, indexed by the
            micro-batch ids used inside the instructions.
        metadata: Planner predictions and bookkeeping.
    """

    device_instructions: list[list[PipelineInstruction]]
    microbatch_shapes: list[MicroBatchShape]
    metadata: PlanMetadata

    @property
    def num_stages(self) -> int:
        """Number of pipeline stages the plan spans."""
        return len(self.device_instructions)

    def total_instructions(self) -> int:
        """Total instruction count across devices."""
        return sum(len(stream) for stream in self.device_instructions)

    # ------------------------------------------------------------------ serialisation

    def to_dict(self) -> dict[str, Any]:
        """Serialise the plan to a JSON-compatible dictionary."""
        return {
            "metadata": {
                "iteration": self.metadata.iteration,
                "replica": self.metadata.replica,
                "schedule_name": self.metadata.schedule_name,
                "recompute": self.metadata.recompute.value,
                "predicted_makespan_ms": self.metadata.predicted_makespan_ms,
                "predicted_peak_memory_bytes": list(self.metadata.predicted_peak_memory_bytes),
                "num_microbatches": self.metadata.num_microbatches,
                "planning_time_s": self.metadata.planning_time_s,
            },
            "microbatch_shapes": [
                {
                    "batch_size": shape.batch_size,
                    "enc_seq_len": shape.enc_seq_len,
                    "dec_seq_len": shape.dec_seq_len,
                }
                for shape in self.microbatch_shapes
            ],
            "device_instructions": [
                instructions_to_dicts(stream) for stream in self.device_instructions
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ExecutionPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        metadata = PlanMetadata(
            iteration=int(payload["metadata"]["iteration"]),
            replica=int(payload["metadata"]["replica"]),
            schedule_name=str(payload["metadata"]["schedule_name"]),
            recompute=RecomputeMode(payload["metadata"]["recompute"]),
            predicted_makespan_ms=float(payload["metadata"]["predicted_makespan_ms"]),
            predicted_peak_memory_bytes=[
                float(x) for x in payload["metadata"]["predicted_peak_memory_bytes"]
            ],
            num_microbatches=int(payload["metadata"]["num_microbatches"]),
            planning_time_s=float(payload["metadata"]["planning_time_s"]),
        )
        shapes = [
            MicroBatchShape(
                batch_size=int(s["batch_size"]),
                enc_seq_len=int(s["enc_seq_len"]),
                dec_seq_len=int(s["dec_seq_len"]),
            )
            for s in payload["microbatch_shapes"]
        ]
        streams = [
            instructions_from_dicts(stream) for stream in payload["device_instructions"]
        ]
        return cls(device_instructions=streams, microbatch_shapes=shapes, metadata=metadata)


def shapes_of(micro_batches: Sequence) -> list[MicroBatchShape]:
    """Padded shapes of a sequence of :class:`~repro.batching.base.MicroBatch`."""
    return [mb.shape() for mb in micro_batches]
