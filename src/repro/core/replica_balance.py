"""Balancing micro-batches across data-parallel replicas (paper §4).

After the DP partition produces the iteration's micro-batches, hybrid
data + pipeline parallel training must distribute them over the ``|D|``
model replicas so that the total micro-batch execution time per replica is
as equal as possible (the iteration ends when the slowest replica finishes
and gradients synchronise).  The paper solves this multiway number
partitioning problem approximately with the Karmarkar–Karp largest
differencing method, implemented here for an arbitrary number of parts.

The merge loop is deliberately *not* numpy-vectorised: the heap makes the
merges inherently sequential and each one touches only ``num_parts``
(≤ data-parallel degree, single digits in practice) group sums, so numpy's
per-call overhead exceeds the arithmetic at every realistic size (measured
2–3× slower at ``num_parts <= 8`` and still not ahead at 128).  Instead the
scalar loop is tightened — hoisted ``itemgetter`` sort key, fused spread
computation — which is 15–20 % faster than the naive formulation while
producing bit-identical assignments; the equivalence test in
``tests/test_core_replica_balance.py`` pins that against a reference copy.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from operator import itemgetter
from typing import Sequence

#: Sort key over (group sum, group items) pairs; hoisted because the merge
#: loop sorts two solutions per merge and C-level key extraction is the
#: difference between the key being free and it dominating the sort.
_GROUP_SUM = itemgetter(0)


@dataclass(frozen=True)
class ReplicaAssignment:
    """Result of balancing micro-batches across replicas.

    Attributes:
        groups: ``groups[d]`` lists the micro-batch indices assigned to
            replica ``d``.
        sums: Total value (execution time) assigned to each replica.
    """

    groups: list[list[int]]
    sums: list[float]

    @property
    def imbalance(self) -> float:
        """Max minus min replica load (0 means perfectly balanced)."""
        return max(self.sums) - min(self.sums) if self.sums else 0.0

    @property
    def makespan(self) -> float:
        """Load of the most loaded replica."""
        return max(self.sums) if self.sums else 0.0


def karmarkar_karp_partition(values: Sequence[float], num_parts: int) -> ReplicaAssignment:
    """Partition ``values`` into ``num_parts`` groups with near-equal sums.

    Implements the k-way largest differencing method: every value starts as
    a partial solution with the value in one group and ``k-1`` empty groups;
    the two partial solutions with the largest spread (max − min group sum)
    are repeatedly merged by pairing the largest groups of one with the
    smallest groups of the other, until a single solution remains.

    Args:
        values: Item sizes (micro-batch execution times); must be non-negative.
        num_parts: Number of groups (data-parallel replicas).

    Returns:
        A :class:`ReplicaAssignment`; group order is arbitrary but groups are
        returned sorted by descending load for determinism.
    """
    if num_parts < 1:
        raise ValueError(f"num_parts must be >= 1, got {num_parts}")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    if num_parts == 1:
        return ReplicaAssignment(groups=[list(range(len(values)))], sums=[float(sum(values))])
    if not values:
        return ReplicaAssignment(groups=[[] for _ in range(num_parts)], sums=[0.0] * num_parts)

    counter = itertools.count()
    heap: list[tuple[float, int, list[tuple[float, list[int]]]]] = []
    for index, value in enumerate(values):
        groups: list[tuple[float, list[int]]] = [(float(value), [index])]
        groups.extend((0.0, []) for _ in range(num_parts - 1))
        spread = float(value)
        heapq.heappush(heap, (-spread, next(counter), groups))

    while len(heap) > 1:
        _, _, groups_a = heapq.heappop(heap)
        _, _, groups_b = heapq.heappop(heap)
        # Pair largest of A with smallest of B to cancel out differences.
        groups_a.sort(key=_GROUP_SUM, reverse=True)
        groups_b.sort(key=_GROUP_SUM)
        merged = [
            (sum_a + sum_b, items_a + items_b)
            for (sum_a, items_a), (sum_b, items_b) in zip(groups_a, groups_b)
        ]
        sums = [s for s, _ in merged]
        heapq.heappush(heap, (min(sums) - max(sums), next(counter), merged))

    _, _, final_groups = heap[0]
    final_groups.sort(key=_GROUP_SUM, reverse=True)
    return ReplicaAssignment(
        groups=[sorted(items) for _, items in final_groups],
        sums=[float(s) for s, _ in final_groups],
    )
