"""DynaPipe's primary contribution.

The modules in this package implement the three techniques of the paper plus
the planner that composes them into per-iteration execution plans:

* **Micro-batch construction (§4)** — :mod:`repro.core.ordering`,
  :mod:`repro.core.dp_solver`, :mod:`repro.core.replica_balance`,
  :mod:`repro.core.microbatch`.
* **Memory-aware adaptive pipeline scheduling (§5)** —
  :mod:`repro.core.adaptive_schedule`, :mod:`repro.core.microbatch_ordering`.
* **Ahead-of-time communication planning (§6)** — composed from
  :mod:`repro.comm` by the planner.
* **Dynamic recomputation (§7)** — :mod:`repro.core.recomputation`.
* **Planner / execution plans (§3)** — :mod:`repro.core.planner`,
  :mod:`repro.core.execution_plan`.
"""

from repro.core.adaptive_schedule import AdaptiveScheduler, ScheduleKind, build_schedule
from repro.core.dp_solver import DPSolution, MicroBatchCostFn, solve_partition
from repro.core.execution_plan import ExecutionPlan, PlanMetadata
from repro.core.microbatch import DynamicMicroBatcher
from repro.core.microbatch_ordering import cluster_and_order
from repro.core.ordering import OrderingMethod, order_samples
from repro.core.planner import DynaPipePlanner, IterationPlan, PlannerConfig
from repro.core.recomputation import select_recompute_mode
from repro.core.replica_balance import karmarkar_karp_partition

__all__ = [
    "order_samples",
    "OrderingMethod",
    "solve_partition",
    "DPSolution",
    "MicroBatchCostFn",
    "karmarkar_karp_partition",
    "DynamicMicroBatcher",
    "AdaptiveScheduler",
    "ScheduleKind",
    "build_schedule",
    "cluster_and_order",
    "select_recompute_mode",
    "ExecutionPlan",
    "PlanMetadata",
    "DynaPipePlanner",
    "PlannerConfig",
    "IterationPlan",
]
