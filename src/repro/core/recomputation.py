"""Dynamic recomputation selection (paper §7).

Activation checkpointing trades compute for memory, and the right setting
differs per iteration because dynamic micro-batching makes the peak memory
vary.  DynaPipe therefore re-runs scheduling under each candidate
recomputation mode (each has its own cost model behaviour) and keeps the
cheapest one that fits in device memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.adaptive_schedule import AdaptiveScheduler, ScheduleBuildResult, ScheduleKind
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape
from repro.schedule.cyclic import ScheduleDeadlockError
from repro.simulator.engine import CommTimeFn, SimulationResult, simulate_schedule


class OutOfMemoryError(RuntimeError):
    """Raised when no recomputation mode allows the iteration to fit in memory."""


@dataclass
class RecomputeDecision:
    """The selected recomputation mode and its associated schedule.

    Attributes:
        mode: The chosen recomputation mode.
        build: Schedule build result under that mode.
        simulation: Timeline simulation of the built schedule.
        peak_memory_bytes: Per-stage peak memory (static + activations).
        rejected: Modes that were considered but infeasible (exceeded memory
            or could not be scheduled).
    """

    mode: RecomputeMode
    build: ScheduleBuildResult
    simulation: SimulationResult
    peak_memory_bytes: list[float]
    rejected: dict[RecomputeMode, str]


#: Order in which modes are tried: cheapest compute overhead first.
MODE_PREFERENCE: tuple[RecomputeMode, ...] = (
    RecomputeMode.NONE,
    RecomputeMode.SELECTIVE,
    RecomputeMode.FULL,
)


def select_recompute_mode(
    scheduler: AdaptiveScheduler,
    shapes: Sequence[MicroBatchShape],
    kind: ScheduleKind | str = ScheduleKind.MEMORY_AWARE_ADAPTIVE,
    injection_order: Sequence[int] | None = None,
    comm_time_fn: CommTimeFn | None = None,
) -> RecomputeDecision:
    """Pick the cheapest recomputation mode that fits in device memory.

    Every candidate mode is scheduled and simulated; a mode is feasible when
    the simulated per-stage peak memory (activations plus static memory)
    stays within the device memory budget.  Among feasible modes the one with
    the smallest simulated makespan wins — normally the mode with the least
    recomputation, but under memory pressure a heavier mode can win because
    the memory-aware schedule no longer has to delay micro-batch injection.

    Raises:
        OutOfMemoryError: If no mode fits (a single micro-batch's activation
            exceeds a stage's budget even under full recomputation).
    """
    kind = ScheduleKind(kind)
    capacity = scheduler.device_memory_bytes
    cost_model = scheduler.cost_model
    static = [cost_model.stage_static_bytes(j) for j in range(cost_model.num_stages)]

    best: RecomputeDecision | None = None
    rejected: dict[RecomputeMode, str] = {}
    for mode in MODE_PREFERENCE:
        try:
            build = scheduler.build(shapes, kind=kind, recompute=mode, injection_order=injection_order)
        except ScheduleDeadlockError as exc:
            rejected[mode] = f"unschedulable: {exc}"
            continue
        simulation = simulate_schedule(
            build.schedule,
            build.durations,
            comm_time_fn=comm_time_fn,
            activation_bytes=build.activation_bytes,
            static_bytes=static,
        )
        peaks = simulation.peak_activation_bytes
        if any(peak > capacity * (1.0 + 1e-9) for peak in peaks):
            rejected[mode] = (
                f"peak memory {max(peaks) / 1e9:.2f} GB exceeds capacity {capacity / 1e9:.2f} GB"
            )
            continue
        decision = RecomputeDecision(
            mode=mode,
            build=build,
            simulation=simulation,
            peak_memory_bytes=peaks,
            rejected=rejected,
        )
        if best is None or simulation.makespan_ms < best.simulation.makespan_ms:
            best = decision
    if best is None:
        raise OutOfMemoryError(
            "no recomputation mode fits the iteration in device memory: "
            + "; ".join(f"{mode.value}: {reason}" for mode, reason in rejected.items())
        )
    best.rejected = rejected
    return best
