"""DynaPipe's dynamic micro-batch construction (paper §4).

:class:`DynamicMicroBatcher` is the planner-facing front end of the
dynamic-programming partitioner: it orders the mini-batch's samples,
queries the cost model for window times and activation footprints, enforces
the per-micro-batch memory limit, and returns the resulting micro-batches
in partition order together with the DP solution metadata (used by the
planning-time experiment and by tests).

The default (vectorized) path precomputes the padded shape of every
candidate ``[start, start + size)`` window with sliding maxima over the
ordered sample lengths — O(1) per window when the ordering is monotone, as
under SORT ordering — dedupes the windows to their unique shapes, costs all
unique shapes in one batched cost-model query, and hands the resulting
dense :class:`~repro.core.dp_solver.WindowCostTable` to the DP.  The window
*geometry* (shapes and their dedup indices) does not depend on the
recomputation mode, so it is cached and reused across the planner's
recomputation-mode retries; only the (cached, batched) cost query is
re-issued per mode.  ``vectorized=False`` selects the scalar reference path,
which produces identical partitions one cost-model call at a time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.batching.base import BatchingResult, BatchingStrategy, MicroBatch
from repro.core.dp_solver import DPSolution, WindowCostTable, solve_partition
from repro.core.ordering import OrderingMethod, order_samples
from repro.costmodel.cost_model import CostModel
from repro.data.tasks import Sample
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape


def sliding_window_maxima(values: np.ndarray, max_window: int) -> np.ndarray:
    """Maxima of every ``[start, start + size)`` window of ``values``.

    Returns an ``(n, max_window)`` array whose ``[start, size - 1]`` entry is
    ``max(values[start:start + size])``; entries for windows running past the
    end of ``values`` are unspecified.  Non-decreasing inputs (SORT ordering)
    resolve each window to its last element — one gather, O(1) per window;
    other orderings fall back to a vectorized running maximum, one numpy op
    per window size.
    """
    values = np.asarray(values)
    n = len(values)
    window = min(max_window, n) if n else 0
    out = np.empty((n, window), dtype=values.dtype)
    if n == 0 or window == 0:
        return out
    out[:, 0] = values
    if np.all(np.diff(values) >= 0):
        for size in range(2, window + 1):
            out[: n - size + 1, size - 1] = values[size - 1 :]
    else:
        for size in range(2, window + 1):
            np.maximum(
                out[: n - size + 1, size - 2],
                values[size - 1 :],
                out=out[: n - size + 1, size - 1],
            )
    return out


class _WindowGeometry:
    """Unique window shapes of one ordered mini-batch (mode-independent).

    ``unique`` holds one ``(batch_size, enc_seq_len, dec_seq_len)`` row per
    distinct window shape; ``inverse`` maps each valid ``(start, size)``
    window (flattened per ``start_index`` / ``size_index``) to its row.
    """

    def __init__(
        self,
        unique: np.ndarray,
        inverse: np.ndarray,
        start_index: np.ndarray,
        size_index: np.ndarray,
        num_samples: int,
        max_window: int,
    ) -> None:
        self.unique = unique
        self.inverse = inverse
        self.start_index = start_index
        self.size_index = size_index
        self.num_samples = num_samples
        self.max_window = max_window


class DynamicMicroBatcher(BatchingStrategy):
    """Dynamic-programming micro-batch construction.

    Args:
        cost_model: Cost model of one model replica's pipeline.
        ordering: Sample ordering method applied before partitioning.
        recompute: Recomputation mode assumed when estimating time/memory.
        per_microbatch_memory_bytes: Activation-memory limit for a single
            micro-batch on its bottleneck stage.  Defaults to the tightest
            stage activation budget divided by the number of stages, the
            1F1B-style limit described in §4 ("Limit memory consumption").
        sum_weight: Weight of the Σ t(M) objective term (``1/|D|`` when the
            micro-batches will be spread over ``|D|`` data-parallel replicas).
        tmax_sample_count: Number of ``t_max`` candidates for the DP.
        max_microbatch_size: Upper bound on samples per micro-batch.
        vectorized: Whether to use the batched window-cost fast path; the
            scalar reference path produces identical partitions.
    """

    name = "dynapipe-dp"

    def __init__(
        self,
        cost_model: CostModel,
        ordering: OrderingMethod | str = OrderingMethod.SORT,
        recompute: RecomputeMode = RecomputeMode.NONE,
        per_microbatch_memory_bytes: float | None = None,
        sum_weight: float = 1.0,
        tmax_sample_count: int = 24,
        max_microbatch_size: int = 256,
        vectorized: bool = True,
    ) -> None:
        super().__init__(decoder_only=not cost_model.config.is_encoder_decoder)
        self.cost_model = cost_model
        self.ordering = OrderingMethod(ordering)
        self.recompute = recompute
        if per_microbatch_memory_bytes is None:
            per_microbatch_memory_bytes = (
                cost_model.min_activation_budget_bytes() / cost_model.num_stages
            )
        self.per_microbatch_memory_bytes = per_microbatch_memory_bytes
        self.sum_weight = sum_weight
        self.tmax_sample_count = tmax_sample_count
        self.max_microbatch_size = max_microbatch_size
        self.vectorized = vectorized
        #: DP solution of the most recent :meth:`split` call (for inspection).
        self.last_solution: DPSolution | None = None
        # One-slot (key, geometry) cache of the latest mini-batch's window
        # geometry, reused across recomputation-mode retries (the geometry is
        # mode-free).  Stored as a single tuple so concurrent planners reading
        # and replacing the slot never observe a key paired with another
        # mini-batch's geometry.
        self._geometry_entry: tuple[tuple, _WindowGeometry] | None = None

    # ------------------------------------------------------------------ helpers

    def _window_shape(self, ordered: Sequence[Sample], start: int, end: int) -> MicroBatchShape:
        """Padded shape of the micro-batch formed from ``ordered[start:end]``."""
        window = ordered[start:end]
        if self.decoder_only:
            enc = max(s.total_tokens for s in window)
            dec = 0
        else:
            enc = max(s.input_tokens for s in window)
            dec = max(s.target_tokens for s in window)
        return MicroBatchShape(batch_size=end - start, enc_seq_len=enc, dec_seq_len=dec)

    def window_time_ms(self, ordered: Sequence[Sample], start: int, end: int) -> float:
        """Modelled ``t(M)`` of the window (bottleneck-stage forward+backward)."""
        shape = self._window_shape(ordered, start, end)
        return self.cost_model.microbatch_time_ms(shape, self.recompute)

    def window_feasible(self, ordered: Sequence[Sample], start: int, end: int) -> bool:
        """Whether the window's activation footprint respects the memory limit."""
        shape = self._window_shape(ordered, start, end)
        activation = self.cost_model.microbatch_activation_bytes(shape, self.recompute)
        return activation <= self.per_microbatch_memory_bytes

    # ------------------------------------------------------------------ fast path

    def _window_geometry(self, ordered: Sequence[Sample]) -> _WindowGeometry:
        """Unique shapes of all candidate windows of the ordered mini-batch."""
        if self.decoder_only:
            enc = np.array([s.total_tokens for s in ordered], dtype=np.int64)
            dec = np.zeros(len(ordered), dtype=np.int64)
        else:
            enc = np.array([s.input_tokens for s in ordered], dtype=np.int64)
            dec = np.array([s.target_tokens for s in ordered], dtype=np.int64)
        key = (len(ordered), self.max_microbatch_size, enc.tobytes(), dec.tobytes())
        entry = self._geometry_entry
        if entry is not None and entry[0] == key:
            return entry[1]

        n = len(ordered)
        window = min(self.max_microbatch_size, n)
        enc_max = sliding_window_maxima(enc, window)
        dec_max = sliding_window_maxima(dec, window)
        sizes = np.arange(1, window + 1)[None, :]
        starts = np.arange(n)[:, None]
        valid = starts + sizes <= n
        start_index, size_index = np.nonzero(valid)
        triples = np.stack(
            [
                size_index + 1,
                enc_max[start_index, size_index],
                dec_max[start_index, size_index],
            ],
            axis=1,
        )
        unique, inverse = np.unique(triples, axis=0, return_inverse=True)
        geometry = _WindowGeometry(
            unique=unique,
            inverse=inverse.reshape(-1),
            start_index=start_index,
            size_index=size_index,
            num_samples=n,
            max_window=window,
        )
        self._geometry_entry = (key, geometry)
        return geometry

    def build_window_cost_table(
        self, ordered: Sequence[Sample], recompute: RecomputeMode | None = None
    ) -> WindowCostTable:
        """Dense window time/feasibility tables for the DP fast path.

        One batched cost-model query covers every unique window shape; the
        results are scattered back to dense ``(start, size)`` tables.
        """
        mode = self.recompute if recompute is None else recompute
        geometry = self._window_geometry(ordered)
        times_unique, activation_unique = self.cost_model.window_costs_arrays(
            geometry.unique[:, 0],
            geometry.unique[:, 1],
            geometry.unique[:, 2],
            mode,
        )
        feasible_unique = activation_unique <= self.per_microbatch_memory_bytes
        times = np.full((geometry.num_samples, geometry.max_window), np.inf)
        feasible = np.zeros((geometry.num_samples, geometry.max_window), dtype=bool)
        times[geometry.start_index, geometry.size_index] = times_unique[geometry.inverse]
        feasible[geometry.start_index, geometry.size_index] = feasible_unique[
            geometry.inverse
        ]
        return WindowCostTable(
            times=times,
            feasible=feasible,
            unique_shape_evaluations=len(geometry.unique),
        )

    # ------------------------------------------------------------------ strategy API

    def split(
        self, samples: Sequence[Sample], recompute: RecomputeMode | None = None
    ) -> BatchingResult:
        """Order the mini-batch and partition it with the DP algorithm.

        Args:
            samples: The mini-batch to partition.
            recompute: Recomputation mode override for this call (defaults to
                the instance's mode); lets the planner retry heavier modes
                without rebuilding the batcher or its window geometry.
        """
        result, solution = self.split_with_solution(samples, recompute)
        self.last_solution = solution
        return result

    def split_with_solution(
        self, samples: Sequence[Sample], recompute: RecomputeMode | None = None
    ) -> tuple[BatchingResult, DPSolution | None]:
        """:meth:`split` returning the DP solution directly.

        Concurrent planners sharing one batcher (e.g. planner-pool worker
        threads) must use this instead of reading ``last_solution``, which is
        last-writer-wins across threads.
        """
        if not samples:
            return BatchingResult(micro_batches=[]), None
        mode = self.recompute if recompute is None else recompute
        ordered = order_samples(samples, self.ordering, decoder_only=self.decoder_only)
        if self.vectorized:
            solution = solve_partition(
                num_samples=len(ordered),
                num_stages=self.cost_model.num_stages,
                cost_table=self.build_window_cost_table(ordered, mode),
                sum_weight=self.sum_weight,
                max_microbatch_size=self.max_microbatch_size,
                tmax_sample_count=self.tmax_sample_count,
            )
        else:
            shape_cache: dict[tuple[int, int], MicroBatchShape] = {}

            def window_shape(start: int, end: int) -> MicroBatchShape:
                key = (start, end)
                if key not in shape_cache:
                    shape_cache[key] = self._window_shape(ordered, start, end)
                return shape_cache[key]

            solution = solve_partition(
                num_samples=len(ordered),
                num_stages=self.cost_model.num_stages,
                time_fn=lambda start, end: self.cost_model.microbatch_time_ms(
                    window_shape(start, end), mode
                ),
                feasible_fn=lambda start, end: self.cost_model.microbatch_activation_bytes(
                    window_shape(start, end), mode
                )
                <= self.per_microbatch_memory_bytes,
                sum_weight=self.sum_weight,
                max_microbatch_size=self.max_microbatch_size,
                tmax_sample_count=self.tmax_sample_count,
            )
        micro_batches = [
            MicroBatch.from_samples(ordered[start:end], decoder_only=self.decoder_only)
            for start, end in solution.boundaries
        ]
        return BatchingResult(micro_batches=micro_batches), solution
