"""DynaPipe's dynamic micro-batch construction (paper §4).

:class:`DynamicMicroBatcher` is the planner-facing front end of the
dynamic-programming partitioner: it orders the mini-batch's samples,
queries the cost model for window times and activation footprints, enforces
the per-micro-batch memory limit, and returns the resulting micro-batches
in partition order together with the DP solution metadata (used by the
planning-time experiment and by tests).
"""

from __future__ import annotations

from typing import Sequence

from repro.batching.base import BatchingResult, BatchingStrategy, MicroBatch
from repro.core.dp_solver import DPSolution, solve_partition
from repro.core.ordering import OrderingMethod, order_samples
from repro.costmodel.cost_model import CostModel
from repro.data.tasks import Sample
from repro.model.memory import RecomputeMode
from repro.model.transformer import MicroBatchShape


class DynamicMicroBatcher(BatchingStrategy):
    """Dynamic-programming micro-batch construction.

    Args:
        cost_model: Cost model of one model replica's pipeline.
        ordering: Sample ordering method applied before partitioning.
        recompute: Recomputation mode assumed when estimating time/memory.
        per_microbatch_memory_bytes: Activation-memory limit for a single
            micro-batch on its bottleneck stage.  Defaults to the tightest
            stage activation budget divided by the number of stages, the
            1F1B-style limit described in §4 ("Limit memory consumption").
        sum_weight: Weight of the Σ t(M) objective term (``1/|D|`` when the
            micro-batches will be spread over ``|D|`` data-parallel replicas).
        tmax_sample_count: Number of ``t_max`` candidates for the DP.
        max_microbatch_size: Upper bound on samples per micro-batch.
    """

    name = "dynapipe-dp"

    def __init__(
        self,
        cost_model: CostModel,
        ordering: OrderingMethod | str = OrderingMethod.SORT,
        recompute: RecomputeMode = RecomputeMode.NONE,
        per_microbatch_memory_bytes: float | None = None,
        sum_weight: float = 1.0,
        tmax_sample_count: int = 24,
        max_microbatch_size: int = 256,
    ) -> None:
        super().__init__(decoder_only=not cost_model.config.is_encoder_decoder)
        self.cost_model = cost_model
        self.ordering = OrderingMethod(ordering)
        self.recompute = recompute
        if per_microbatch_memory_bytes is None:
            per_microbatch_memory_bytes = (
                cost_model.min_activation_budget_bytes() / cost_model.num_stages
            )
        self.per_microbatch_memory_bytes = per_microbatch_memory_bytes
        self.sum_weight = sum_weight
        self.tmax_sample_count = tmax_sample_count
        self.max_microbatch_size = max_microbatch_size
        #: DP solution of the most recent :meth:`split` call (for inspection).
        self.last_solution: DPSolution | None = None

    # ------------------------------------------------------------------ helpers

    def _window_shape(self, ordered: Sequence[Sample], start: int, end: int) -> MicroBatchShape:
        """Padded shape of the micro-batch formed from ``ordered[start:end]``."""
        window = ordered[start:end]
        if self.decoder_only:
            enc = max(s.total_tokens for s in window)
            dec = 0
        else:
            enc = max(s.input_tokens for s in window)
            dec = max(s.target_tokens for s in window)
        return MicroBatchShape(batch_size=end - start, enc_seq_len=enc, dec_seq_len=dec)

    def window_time_ms(self, ordered: Sequence[Sample], start: int, end: int) -> float:
        """Modelled ``t(M)`` of the window (bottleneck-stage forward+backward)."""
        shape = self._window_shape(ordered, start, end)
        return self.cost_model.microbatch_time_ms(shape, self.recompute)

    def window_feasible(self, ordered: Sequence[Sample], start: int, end: int) -> bool:
        """Whether the window's activation footprint respects the memory limit."""
        shape = self._window_shape(ordered, start, end)
        activation = self.cost_model.microbatch_activation_bytes(shape, self.recompute)
        return activation <= self.per_microbatch_memory_bytes

    # ------------------------------------------------------------------ strategy API

    def split(self, samples: Sequence[Sample]) -> BatchingResult:
        """Order the mini-batch and partition it with the DP algorithm."""
        if not samples:
            return BatchingResult(micro_batches=[])
        ordered = order_samples(samples, self.ordering, decoder_only=self.decoder_only)
        solution = solve_partition(
            num_samples=len(ordered),
            num_stages=self.cost_model.num_stages,
            time_fn=lambda start, end: self.window_time_ms(ordered, start, end),
            feasible_fn=lambda start, end: self.window_feasible(ordered, start, end),
            sum_weight=self.sum_weight,
            max_microbatch_size=self.max_microbatch_size,
            tmax_sample_count=self.tmax_sample_count,
        )
        self.last_solution = solution
        micro_batches = [
            MicroBatch.from_samples(ordered[start:end], decoder_only=self.decoder_only)
            for start, end in solution.boundaries
        ]
        return BatchingResult(micro_batches=micro_batches)
