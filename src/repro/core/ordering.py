"""Sample ordering before micro-batch construction (paper §4).

The DP partitioner groups *consecutive* samples of an ordered list into
micro-batches, so the order determines how much padding the groups incur.
Two orderings are provided, mirroring the paper's ablation (Fig. 16a):

* **sort** — decoder-only models sort by sequence length; encoder-decoder
  models sort by input length then target length.
* **tsp** — treat each sample's (input length, target length) pair as a 2-D
  point and find a short visiting path, so that adjacent samples are close
  in *both* dimensions.  The paper uses an off-the-shelf TSP solver; the
  reproduction uses a nearest-neighbour construction followed by 2-opt
  improvement, which the paper's ablation shows performs equivalently to
  sorting in practice.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.data.tasks import Sample
from repro.utils.rng import SeedLike, new_rng


class OrderingMethod(str, enum.Enum):
    """How to order samples before DP partitioning."""

    SORT = "sort"
    """Sort by (input length, target length) — the paper's default."""

    TSP = "tsp"
    """Nearest-neighbour + 2-opt path over (input, target) length points."""

    NONE = "none"
    """Keep the sampling order (used for ablations only)."""


def order_samples(
    samples: Sequence[Sample],
    method: OrderingMethod | str = OrderingMethod.SORT,
    decoder_only: bool = False,
    seed: SeedLike = 0,
    two_opt_passes: int = 2,
) -> list[Sample]:
    """Return ``samples`` reordered according to ``method``.

    Args:
        samples: The mini-batch's samples.
        method: Ordering method.
        decoder_only: Whether input and target are concatenated (GPT); in
            that case sorting uses the total length.
        seed: Seed for the TSP construction's starting point.
        two_opt_passes: Number of full 2-opt improvement sweeps for TSP.
    """
    method = OrderingMethod(method)
    samples = list(samples)
    if len(samples) <= 2 or method is OrderingMethod.NONE:
        return samples
    if method is OrderingMethod.SORT:
        if decoder_only:
            return sorted(samples, key=lambda s: s.total_tokens)
        return sorted(samples, key=lambda s: (s.input_tokens, s.target_tokens))
    return _tsp_order(samples, decoder_only=decoder_only, seed=seed, two_opt_passes=two_opt_passes)


def path_length(samples: Sequence[Sample], decoder_only: bool = False) -> float:
    """Sum of L1 distances between adjacent samples' length points.

    Used by tests and the ablation bench to compare ordering quality: a
    shorter path means adjacent samples have more similar lengths, hence
    less padding when grouped.
    """
    points = _points(samples, decoder_only)
    if len(points) < 2:
        return 0.0
    return float(np.abs(np.diff(points, axis=0)).sum())


def _points(samples: Sequence[Sample], decoder_only: bool) -> np.ndarray:
    if decoder_only:
        return np.array([[s.total_tokens, 0.0] for s in samples], dtype=float)
    return np.array([[s.input_tokens, s.target_tokens] for s in samples], dtype=float)


def _tsp_order(
    samples: list[Sample],
    decoder_only: bool,
    seed: SeedLike,
    two_opt_passes: int,
) -> list[Sample]:
    """Nearest-neighbour path construction followed by 2-opt improvement."""
    points = _points(samples, decoder_only)
    n = len(samples)
    rng = new_rng(seed)

    # Nearest-neighbour construction starting from the shortest sample (a
    # deterministic, sensible endpoint for an open path).
    start = int(np.argmin(points.sum(axis=1)))
    visited = np.zeros(n, dtype=bool)
    order = [start]
    visited[start] = True
    for _ in range(n - 1):
        last = order[-1]
        distances = np.abs(points - points[last]).sum(axis=1)
        distances[visited] = np.inf
        nxt = int(np.argmin(distances))
        order.append(nxt)
        visited[nxt] = True

    # 2-opt improvement on the open path (L1 metric).
    def segment_cost(a: int, b: int) -> float:
        return float(np.abs(points[a] - points[b]).sum())

    for _ in range(max(two_opt_passes, 0)):
        improved = False
        for i in range(n - 2):
            for j in range(i + 2, n - 1):
                a, b = order[i], order[i + 1]
                c, d = order[j], order[j + 1]
                delta = (segment_cost(a, c) + segment_cost(b, d)) - (
                    segment_cost(a, b) + segment_cost(c, d)
                )
                if delta < -1e-9:
                    order[i + 1 : j + 1] = reversed(order[i + 1 : j + 1])
                    improved = True
        if not improved:
            break
    del rng  # seed reserved for future randomised restarts
    return [samples[i] for i in order]
