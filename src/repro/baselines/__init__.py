"""Baseline training systems.

The paper's baseline is Megatron-LM integrated with DeepSpeed ("MLM+DS"),
which handles variable-length multi-task data by *packing* samples into
sequences of the configured maximum length and training with fixed-size
micro-batches under the 1F1B schedule.  :class:`~repro.baselines.mlm_ds.MLMDeepSpeedBaseline`
reimplements that pipeline on top of the same cost model and simulator used
by DynaPipe so that the two systems are compared under identical modelling
assumptions.
"""

from repro.baselines.mlm_ds import BaselineConfig, MLMDeepSpeedBaseline

__all__ = ["MLMDeepSpeedBaseline", "BaselineConfig"]
