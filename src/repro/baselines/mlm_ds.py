"""Packing-based baseline (Megatron-LM + DeepSpeed).

The baseline planner mirrors how MLM+DS handles a multi-task mini-batch:

1. samples are packed into rows of exactly ``max_seq_len`` tokens (first-fit
   concatenation, paper §2.2);
2. the packed rows are split evenly across data-parallel replicas;
3. each replica groups its rows into micro-batches of a fixed size;
4. micro-batches execute under the 1F1B schedule with a fixed, user-chosen
   recomputation mode;
5. communication follows the regular 1F1B pattern (for which the naive and
   the planned orders coincide, so the ahead-of-time planner is reused to
   drive the instruction-level executor).

Because packed rows always have the full maximum sequence length, the
quadratic attention cost over the packed sequence — the waste DynaPipe
avoids — is automatically reflected in the cost model queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.batching.metrics import padding_stats
from repro.batching.packing import PackingBatching
from repro.cluster.network import NetworkModel
from repro.comm.planner import build_instruction_streams
from repro.comm.shapes import TransferShapes
from repro.core.adaptive_schedule import AdaptiveScheduler, ScheduleKind
from repro.core.execution_plan import ExecutionPlan, PlanMetadata
from repro.core.planner import IterationPlan, ReplicaPlanResult
from repro.core.recomputation import OutOfMemoryError
from repro.costmodel.cost_model import CostModel
from repro.data.tasks import Sample
from repro.model.memory import RecomputeMode
from repro.parallel.dataparallel import gradient_allreduce_ms
from repro.simulator.engine import simulate_schedule


@dataclass
class BaselineConfig:
    """Configuration of the MLM+DS baseline.

    Attributes:
        max_seq_len: Packing target sequence length.
        micro_batch_size: Packed rows per micro-batch.
        recompute: Activation checkpointing mode (fixed for the whole run).
        max_target_len: Packing target for decoder sequences (T5 only).
        device_memory_bytes: Usable device memory (defaults to the device
            capacity of the cost model).
        data_parallel_same_node: Link class of the gradient all-reduce.
        model_comm_overlap: Fraction of the all-reduce hidden by computation.
        stages_same_node: Link class of inter-stage transfers.
    """

    max_seq_len: int
    micro_batch_size: int
    recompute: RecomputeMode = RecomputeMode.NONE
    max_target_len: int | None = None
    device_memory_bytes: float | None = None
    data_parallel_same_node: bool = False
    model_comm_overlap: float = 0.5
    stages_same_node: bool = True


class MLMDeepSpeedBaseline:
    """Packing + fixed micro-batches + 1F1B, on the shared substrate.

    Args:
        cost_model: Cost model of one replica's pipeline.
        data_parallel_size: Number of data-parallel replicas.
        config: Baseline configuration.
        network: Communication model.
    """

    def __init__(
        self,
        cost_model: CostModel,
        data_parallel_size: int = 1,
        config: BaselineConfig | None = None,
        network: NetworkModel | None = None,
    ) -> None:
        if config is None:
            raise ValueError("BaselineConfig is required (max_seq_len and micro_batch_size)")
        if data_parallel_size < 1:
            raise ValueError(f"data_parallel_size must be >= 1, got {data_parallel_size}")
        self.cost_model = cost_model
        self.data_parallel_size = data_parallel_size
        self.config = config
        self.network = network or NetworkModel()
        self.device_memory_bytes = (
            config.device_memory_bytes
            if config.device_memory_bytes is not None
            else cost_model.device_spec.memory_capacity
        )
        if cost_model.min_activation_budget_bytes(self.device_memory_bytes) <= 0:
            raise OutOfMemoryError(
                f"static memory of {cost_model.config.name} with "
                f"{cost_model.num_stages} pipeline stages and tensor parallelism "
                f"{cost_model.tensor_parallel} exceeds the device memory of "
                f"{self.device_memory_bytes / 1e9:.1f} GB; increase pipeline or "
                "tensor parallelism"
            )
        self.decoder_only = not cost_model.config.is_encoder_decoder
        self.packer = PackingBatching(
            max_seq_len=config.max_seq_len,
            micro_batch_size=config.micro_batch_size,
            decoder_only=self.decoder_only,
            max_target_len=config.max_target_len,
        )
        self.scheduler = AdaptiveScheduler(cost_model, self.device_memory_bytes)

    # ------------------------------------------------------------------ planning

    def plan(self, samples: list[Sample], iteration: int = 0) -> IterationPlan:
        """Build the baseline's execution plans for one mini-batch.

        Raises:
            OutOfMemoryError: If the configured micro-batch size does not fit
                in device memory under 1F1B (the paper's "OOM" points in
                Fig. 5/13).
        """
        if not samples:
            raise ValueError("cannot plan an iteration with no samples")
        start_time = time.perf_counter()

        rows, dropped = self.packer.pack_rows(samples)
        if not rows:
            raise ValueError("packing produced no rows; all samples were dropped")
        # Split packed rows across data-parallel replicas as evenly as possible
        # (MLM+DS shards the mini-batch uniformly).
        replica_rows: list[list[list[Sample]]] = [[] for _ in range(self.data_parallel_size)]
        for index, row in enumerate(rows):
            replica_rows[index % self.data_parallel_size].append(row)
        if any(not group for group in replica_rows):
            raise OutOfMemoryError(
                f"only {len(rows)} packed rows for {self.data_parallel_size} replicas; "
                "reduce data parallelism or the global batch size"
            )

        from repro.batching.base import MicroBatch  # local import avoids a cycle at module load

        all_micro_batches = []
        replicas: list[ReplicaPlanResult] = []
        for replica_index, group_rows in enumerate(replica_rows):
            micro_batches = []
            for start in range(0, len(group_rows), self.config.micro_batch_size):
                chunk = group_rows[start : start + self.config.micro_batch_size]
                micro_batches.append(
                    MicroBatch(
                        rows=chunk,
                        decoder_only=self.decoder_only,
                        pad_enc_to=self.config.max_seq_len,
                        pad_dec_to=self.packer.max_target_len if not self.decoder_only else None,
                    )
                )
            all_micro_batches.extend(micro_batches)
            shapes = [mb.shape() for mb in micro_batches]
            transfer_shapes = TransferShapes.from_cost_model(self.cost_model, shapes)
            build = self.scheduler.build(
                shapes, kind=ScheduleKind.ONE_F_ONE_B, recompute=self.config.recompute
            )
            static = [
                self.cost_model.stage_static_bytes(j)
                for j in range(self.cost_model.num_stages)
            ]

            def comm_time(microbatch: int, src: int, dst: int, is_gradient: bool) -> float:
                nbytes = (
                    transfer_shapes.grad_bytes(microbatch, src)
                    if is_gradient
                    else transfer_shapes.act_bytes(microbatch, src)
                )
                return self.network.p2p_time_ms(nbytes, same_node=self.config.stages_same_node)

            simulation = simulate_schedule(
                build.schedule,
                build.durations,
                comm_time_fn=comm_time,
                activation_bytes=build.activation_bytes,
                static_bytes=static,
            )
            if any(
                peak > self.device_memory_bytes * (1.0 + 1e-9)
                for peak in simulation.peak_activation_bytes
            ):
                raise OutOfMemoryError(
                    f"baseline OOM: peak memory "
                    f"{max(simulation.peak_activation_bytes) / 1e9:.2f} GB exceeds "
                    f"{self.device_memory_bytes / 1e9:.2f} GB "
                    f"(micro_batch_size={self.config.micro_batch_size}, "
                    f"max_seq_len={self.config.max_seq_len}, "
                    f"recompute={self.config.recompute.value})"
                )
            streams = build_instruction_streams(
                build.schedule,
                simulation.op_times,
                shapes,
                transfer_shapes,
                recompute=self.config.recompute,
            )
            metadata = PlanMetadata(
                iteration=iteration,
                replica=replica_index,
                schedule_name=build.schedule.name,
                recompute=self.config.recompute,
                predicted_makespan_ms=simulation.makespan_ms,
                predicted_peak_memory_bytes=list(simulation.peak_activation_bytes),
                num_microbatches=len(shapes),
            )
            plan = ExecutionPlan(
                device_instructions=streams,
                microbatch_shapes=list(shapes),
                metadata=metadata,
            )
            replicas.append(
                ReplicaPlanResult(plan=plan, micro_batches=micro_batches, simulation=simulation)
            )

        dp_comm = gradient_allreduce_ms(
            self.cost_model.config,
            self.data_parallel_size,
            self.cost_model.num_stages,
            self.cost_model.tensor_parallel,
            network=self.network,
            same_node=self.config.data_parallel_same_node,
        )
        exposed = dp_comm * (1.0 - self.config.model_comm_overlap)
        predicted = max(r.simulation.makespan_ms for r in replicas) + exposed
        planning_time = time.perf_counter() - start_time
        for replica in replicas:
            replica.plan.metadata.planning_time_s = planning_time

        return IterationPlan(
            replicas=replicas,
            recompute=self.config.recompute,
            predicted_iteration_ms=predicted,
            data_parallel_comm_ms=dp_comm,
            padding=padding_stats(all_micro_batches),
            dp_solution=None,
            planning_time_s=planning_time,
        )
