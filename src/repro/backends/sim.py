"""The simulator as an execution backend (the conformance oracle).

:class:`SimBackend` is a thin adapter putting
:class:`~repro.simulator.executor.InstructionExecutor` behind the
:class:`~repro.backends.base.ExecutionBackend` interface.  It adds no
semantics of its own: the executor already implements the full channel
model, so the adapter only derives the conformance report fields (event
order, per-channel matching order) from the executor's output.

Because the simulator executes each device's stream strictly in order, the
reported ``device_event_order`` of a completed run is the stream itself —
which is exactly the point: any backend that *really* runs the streams
concurrently must still complete each device's instructions in stream
order, and the differential suite checks that it reports the same.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.backends.base import (
    BackendExecutionReport,
    BackendOptions,
    ExecutionBackend,
    channel_order_from_log,
)
from repro.instructions.ops import PipelineInstruction
from repro.instructions.serialization import instruction_signature
from repro.simulator.executor import ExecutionResult, InstructionExecutor


class SimBackend(ExecutionBackend):
    """Discrete-event reference backend (virtual time, analytic deadlocks)."""

    name = "sim"

    def __init__(self, options: BackendOptions | None = None) -> None:
        self.options = options or BackendOptions()
        self._executor = InstructionExecutor(
            compute_duration_fn=self.options.compute_duration_fn,
            transfer_time_fn=self.options.transfer_time_fn,
            activation_bytes_fn=self.options.activation_bytes_fn,
            static_bytes=self.options.static_bytes,
            device_capacity=self.options.device_capacity,
        )

    def run(
        self, device_instructions: Sequence[Sequence[PipelineInstruction]]
    ) -> ExecutionResult:
        return self._executor.run(device_instructions)

    def run_report(
        self, device_instructions: Sequence[Sequence[PipelineInstruction]]
    ) -> BackendExecutionReport:
        started = time.perf_counter()
        result = self.run(device_instructions)
        wall = time.perf_counter() - started
        return BackendExecutionReport(
            backend=self.name,
            result=result,
            device_event_order=[
                [instruction_signature(instr) for instr in stream]
                for stream in device_instructions
            ],
            channel_transfer_order=channel_order_from_log(result.transfer_log),
            wall_time_s=wall,
        )
