"""Local multiprocess execution backend: really runs instruction streams.

One worker **process** per virtual device executes its stream in order over
real OS-level IPC, following the BMTrain/vllm shape of a pipeline driver
(init channels → run stream → collectives through a module API → destroy):

* ``Forward``/``Backward`` run on the worker (optionally sleeping a scaled
  fraction of their virtual duration) and update a real
  :class:`~repro.simulator.memory_tracker.MemoryTracker`;
* ``*Start`` ops post asynchronously: the worker appends the op to its own
  per-channel FIFO and pushes a small record — with a deterministic numpy
  payload for sends — through a :class:`multiprocessing.Queue` to the peer,
  then continues immediately (communication overlaps compute for real);
* ``Wait*`` ops block the worker until the transfer completed.

A channel (one per adjacent device pair) completes a transfer only when the
heads of both sides' posted FIFOs name the same transfer from opposite ends
— the executor's NCCL constraint.  Each worker evaluates the matching rule
locally over (its own FIFO, the peer records it drained); both sides see the
same two FIFOs, so they reach identical matching decisions without any
coordinator.  The payoff: a stream the simulator calls deadlocked does not
raise here — it **actually hangs**, with a worker parked on a queue read
that will never be satisfied.

The watchdog turns that real hang back into a structured error.  A worker
blocked on a ``Wait*`` reports itself blocked — immediately when it can see
its channel heads are present but permanently mismatched, after
``block_report_s`` otherwise — and reports again if it later unblocks.  The
parent declares deadlock only when every unfinished worker is blocked and a
grace re-check drains no progress, then terminates the workers and raises
:class:`~repro.simulator.executor.CommunicationDeadlockError` with the same
``blocked_devices``/``blocked_detail`` fields the simulator produces, so
differential harnesses can compare verdicts field by field.

Times in the returned :class:`~repro.simulator.executor.ExecutionResult`
are real wall-clock milliseconds (the simulator's are virtual), which is
why the conformance fingerprint compares ordering, never timing.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.backends.base import (
    BackendExecutionReport,
    BackendOptions,
    ChannelId,
    ExecutionBackend,
    normalize_transfer_key,
)
from repro.instructions.ops import (
    BackwardPass,
    ForwardPass,
    PipelineInstruction,
    _CommStart,
    _CommWait,
)
from repro.instructions.serialization import (
    instruction_signature,
    instructions_from_dicts,
    instructions_to_dicts,
)
from repro.simulator.executor import (
    CommunicationDeadlockError,
    ExecutionResult,
    _transfer_key_for_start,
    _transfer_key_for_wait,
    blocked_instruction_detail,
    describe_blocked_detail,
)
from repro.simulator.memory_tracker import MemoryTracker
from repro.simulator.trace import ExecutionTrace, TraceEvent

#: JSON/pickle-safe transfer key: (sender, receiver, microbatch, direction value).
WireKey = tuple[int, int, int, str]

#: Directions, indexed for payload encoding.
_DIRECTIONS = ("activation", "gradient")


class LocalBackendTimeoutError(RuntimeError):
    """The run exceeded the hard wall-clock budget without a stable verdict.

    Distinct from :class:`CommunicationDeadlockError`: the deadlock error
    means the watchdog *positively* concluded no progress is possible; this
    one means the run was still (apparently) progressing when the budget
    ran out — raise ``timeout_s`` for big streams or slow machines.
    """


class BackendWorkerError(RuntimeError):
    """A worker process died on an unexpected exception (not a deadlock)."""


def expected_payload(key: WireKey) -> np.ndarray:
    """Deterministic small-numpy payload both sides derive from the key.

    The sender ships it, the receiver re-derives and verifies it — the
    cheapest possible stand-in for "the right tensor arrived".
    """
    sender, receiver, microbatch, direction = key
    header = np.array(
        [sender, receiver, microbatch, _DIRECTIONS.index(direction)], dtype=np.float64
    )
    seed = (sender * 73856093) ^ (receiver * 19349663) ^ (microbatch * 83492791)
    body = np.arange(8, dtype=np.float64) * ((seed % 1024) + 1)
    return np.concatenate([header, body])


@dataclass
class _PostRecord:
    """One side's posted Start op, as shipped to the peer."""

    key: WireKey
    is_send: bool
    post_ms: float
    payload: np.ndarray | None = None


class _ChannelView:
    """One worker's view of the FIFO channel it shares with a peer."""

    def __init__(self) -> None:
        self.mine: deque[_PostRecord] = deque()
        self.theirs: deque[_PostRecord] = deque()
        self.completed: dict[WireKey, tuple[float, float]] = {}
        self.order: list[WireKey] = []

    def heads_mismatched(self) -> bool:
        """Both heads posted but they can never match (permanent: FIFO
        heads only ever pop on a match)."""
        if not self.mine or not self.theirs:
            return False
        a, b = self.mine[0], self.theirs[0]
        return not (a.key == b.key and a.is_send != b.is_send)

    def match(self, now_ms: float) -> tuple[list[tuple[WireKey, float, float]], int]:
        """Pop every matching head pair; returns (received transfers by me,
        payload verification failures)."""
        received: list[tuple[WireKey, float, float]] = []
        errors = 0
        while self.mine and self.theirs:
            a, b = self.mine[0], self.theirs[0]
            if a.key != b.key or a.is_send == b.is_send:
                break
            span = (max(a.post_ms, b.post_ms), now_ms)
            self.completed[a.key] = span
            self.order.append(a.key)
            if not a.is_send:  # I am the receiver: verify the shipped payload.
                if b.payload is None or not np.array_equal(
                    b.payload, expected_payload(a.key)
                ):
                    errors += 1
                received.append((a.key, span[0], span[1]))
            self.mine.popleft()
            self.theirs.popleft()
        return received, errors


# --------------------------------------------------------------------- worker


def _worker_main(device: int, cfg: dict[str, Any]) -> None:
    """Entry point of one device process; communicates only through queues."""
    report: mp.Queue = cfg["report_queue"]
    try:
        _run_device(device, cfg, report)
    except Exception:  # pragma: no cover - defensive; surfaced by the parent
        report.put(("error", device, traceback.format_exc()))


def _run_device(device: int, cfg: dict[str, Any], report: mp.Queue) -> None:
    instructions = instructions_from_dicts(cfg["stream"])
    durations: list[float | None] = cfg["durations"]
    act_bytes: list[float | None] = cfg["act_bytes"]
    in_queues: dict[int, mp.Queue] = cfg["in_queues"]
    out_queues: dict[int, mp.Queue] = cfg["out_queues"]
    t0: float = cfg["t0"]
    block_report_s: float = cfg["block_report_s"]
    poll_s: float = cfg["poll_s"]
    time_scale: float = cfg["compute_time_scale"]
    ship_payloads: bool = cfg["ship_payloads"]

    def now_ms() -> float:
        return (time.time() - t0) * 1000.0

    tracker = MemoryTracker(
        capacity=cfg["device_capacity"], static_bytes=cfg["static_bytes"]
    )
    channels: dict[int, _ChannelView] = {peer: _ChannelView() for peer in in_queues}
    executed: list[tuple[str, int, int, int]] = []
    events: list[tuple[tuple[str, int, int, int], float, float, str, int]] = []
    transfers: list[tuple[WireKey, float, float]] = []
    payload_errors = 0
    busy_ms = 0.0

    def drain(peer: int, timeout: float | None) -> bool:
        """Pull at most one peer record; returns whether one arrived."""
        try:
            if timeout is None:
                record = in_queues[peer].get_nowait()
            else:
                record = in_queues[peer].get(timeout=timeout)
        except queue_mod.Empty:
            return False
        channels[peer].theirs.append(record)
        return True

    def match(peer: int) -> None:
        nonlocal payload_errors
        received, errors = channels[peer].match(now_ms())
        transfers.extend(received)
        payload_errors += errors

    for index, instr in enumerate(instructions):
        start_ms = now_ms()
        if isinstance(instr, (ForwardPass, BackwardPass)):
            duration_ms = max(durations[index] or 0.0, 0.0)
            if time_scale > 0.0:
                time.sleep(duration_ms * time_scale)
            nbytes = act_bytes[index]
            if nbytes is not None:
                if isinstance(instr, ForwardPass):
                    tracker.allocate(("act", instr.microbatch), nbytes)
                else:
                    tracker.free(("act", instr.microbatch))
            end_ms = now_ms()
            busy_ms += end_ms - start_ms
            events.append(
                (instruction_signature(instr), start_ms, end_ms, "compute", instr.microbatch)
            )
        elif isinstance(instr, _CommStart):
            key = normalize_transfer_key(_transfer_key_for_start(instr))
            payload = (
                expected_payload(key) if (instr.is_send and ship_payloads) else None
            )
            record = _PostRecord(
                key=key, is_send=instr.is_send, post_ms=start_ms, payload=payload
            )
            channels[instr.peer].mine.append(record)
            out_queues[instr.peer].put(record)
            # Opportunistic, non-blocking progress on this channel.
            while drain(instr.peer, None):
                pass
            match(instr.peer)
            events.append(
                (instruction_signature(instr), start_ms, now_ms(), "comm_start", instr.microbatch)
            )
        elif isinstance(instr, _CommWait):
            key = normalize_transfer_key(_transfer_key_for_wait(instr))
            peer = instr.peer
            channel = channels[peer]
            reported_blocked = False
            report_at = time.time() + block_report_s
            while key not in channel.completed:
                if not reported_blocked and (
                    channel.heads_mismatched() or time.time() >= report_at
                ):
                    detail = blocked_instruction_detail(device, instr)
                    detail["head_mismatch"] = channel.heads_mismatched()
                    report.put(("blocked", device, detail))
                    reported_blocked = True
                drain(peer, poll_s)
                match(peer)
            if reported_blocked:
                report.put(("unblocked", device))
            events.append(
                (instruction_signature(instr), start_ms, now_ms(), "comm_wait", instr.microbatch)
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown instruction type {type(instr).__name__}")
        executed.append(instruction_signature(instr))

    report.put(
        (
            "done",
            device,
            {
                "executed": executed,
                "events": events,
                "busy_ms": busy_ms,
                "finish_ms": now_ms(),
                "peak_bytes": tracker.peak_bytes,
                "channel_order": {peer: list(view.order) for peer, view in channels.items()},
                "transfers": transfers,
                "payload_errors": payload_errors,
            },
        )
    )


# ---------------------------------------------------------------- coordinator


class LocalBackend(ExecutionBackend):
    """Multiprocess backend: one process per device, real queues per channel.

    Args:
        options: Shared backend options.  ``compute_duration_fn`` and
            ``activation_bytes_fn`` are evaluated in the parent and shipped
            to the workers as plain floats; ``transfer_time_fn`` is ignored
            (transfers take however long the real IPC takes).
        block_report_s: How long a worker waits on an incomplete transfer
            before reporting itself blocked (a head mismatch is reported
            immediately — it is conclusive).
        grace_s: Extra drain window the parent gives an all-blocked state
            before declaring deadlock, absorbing in-flight progress.
        timeout_s: Hard wall-clock budget for the whole run.
        poll_s: Queue poll granularity inside blocked workers.
        compute_time_scale: Real seconds slept per virtual millisecond of
            compute (0 = compute completes instantly; ordering semantics do
            not depend on it).
        ship_payloads: Whether sends carry verifiable numpy payloads.
        mp_start_method: ``multiprocessing`` start method (None = platform
            default — ``fork`` on Linux, ``spawn`` elsewhere).
    """

    name = "local"

    def __init__(
        self,
        options: BackendOptions | None = None,
        *,
        block_report_s: float = 1.0,
        grace_s: float = 0.4,
        timeout_s: float = 60.0,
        poll_s: float = 0.02,
        compute_time_scale: float = 0.0,
        ship_payloads: bool = True,
        mp_start_method: str | None = None,
    ) -> None:
        self.options = options or BackendOptions()
        self.block_report_s = block_report_s
        self.grace_s = grace_s
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self.compute_time_scale = compute_time_scale
        self.ship_payloads = ship_payloads
        self.mp_start_method = mp_start_method

    # ------------------------------------------------------------- plumbing

    def _channels(
        self, device_instructions: Sequence[Sequence[PipelineInstruction]]
    ) -> set[ChannelId]:
        pairs: set[ChannelId] = set()
        for stream in device_instructions:
            for instr in stream:
                if isinstance(instr, (_CommStart, _CommWait)):
                    a, b = instr.stage, instr.peer
                    pairs.add((a, b) if a < b else (b, a))
        return pairs

    def _worker_cfg(
        self,
        device: int,
        stream: Sequence[PipelineInstruction],
        queues: dict[tuple[int, int], mp.Queue],
        report_queue: mp.Queue,
        t0: float,
    ) -> dict[str, Any]:
        durations: list[float | None] = []
        act_bytes: list[float | None] = []
        for instr in stream:
            if isinstance(instr, (ForwardPass, BackwardPass)):
                durations.append(max(self.options.compute_duration_fn(instr), 0.0))
                act_bytes.append(
                    self.options.activation_bytes_fn(instr)
                    if self.options.activation_bytes_fn is not None
                    else None
                )
            else:
                durations.append(None)
                act_bytes.append(None)
        peers = {
            instr.peer
            for instr in stream
            if isinstance(instr, (_CommStart, _CommWait))
        }
        static = 0.0
        if self.options.static_bytes is not None:
            static = self.options.static_bytes[device]
        return {
            "stream": instructions_to_dicts(stream),
            "durations": durations,
            "act_bytes": act_bytes,
            "in_queues": {peer: queues[(peer, device)] for peer in peers},
            "out_queues": {peer: queues[(device, peer)] for peer in peers},
            "report_queue": report_queue,
            "t0": t0,
            "static_bytes": static,
            "device_capacity": self.options.device_capacity,
            "block_report_s": self.block_report_s,
            "poll_s": self.poll_s,
            "compute_time_scale": self.compute_time_scale,
            "ship_payloads": self.ship_payloads,
        }

    # ------------------------------------------------------------- execution

    def run(
        self, device_instructions: Sequence[Sequence[PipelineInstruction]]
    ) -> ExecutionResult:
        return self.run_report(device_instructions).result

    def run_report(
        self, device_instructions: Sequence[Sequence[PipelineInstruction]]
    ) -> BackendExecutionReport:
        started = time.perf_counter()
        num_devices = len(device_instructions)
        if num_devices == 0:
            return BackendExecutionReport(
                backend=self.name,
                result=ExecutionResult(
                    makespan_ms=0.0,
                    device_finish_ms=[],
                    device_compute_ms=[],
                    peak_memory_bytes=[],
                    transfer_log=[],
                ),
                device_event_order=[],
                channel_transfer_order={},
                wall_time_s=0.0,
            )

        ctx = mp.get_context(self.mp_start_method)
        report_queue: mp.Queue = ctx.Queue()
        queues: dict[tuple[int, int], mp.Queue] = {}
        for a, b in self._channels(device_instructions):
            queues[(a, b)] = ctx.Queue()
            queues[(b, a)] = ctx.Queue()
        t0 = time.time()
        workers = [
            ctx.Process(
                target=_worker_main,
                args=(
                    device,
                    self._worker_cfg(device, stream, queues, report_queue, t0),
                ),
                daemon=True,
            )
            for device, stream in enumerate(device_instructions)
        ]
        for worker in workers:
            worker.start()

        try:
            done = self._collect(report_queue, num_devices)
        finally:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
            for worker in workers:
                worker.join(timeout=5.0)
            report_queue.cancel_join_thread()

        return self._assemble(device_instructions, done, time.perf_counter() - started)

    def _collect(self, report_queue: mp.Queue, num_devices: int) -> dict[int, dict]:
        """Watchdog loop: wait for done-reports, convert stable all-blocked
        states into :class:`CommunicationDeadlockError`."""
        states = {device: "running" for device in range(num_devices)}
        blocked_details: dict[int, dict] = {}
        done: dict[int, dict] = {}
        deadline = time.time() + self.timeout_s

        def handle(message: tuple) -> None:
            kind, device = message[0], message[1]
            if kind == "done":
                states[device] = "done"
                blocked_details.pop(device, None)
                done[device] = message[2]
            elif kind == "blocked":
                states[device] = "blocked"
                blocked_details[device] = message[2]
            elif kind == "unblocked":
                states[device] = "running"
                blocked_details.pop(device, None)
            elif kind == "error":
                raise BackendWorkerError(
                    f"device {device} worker crashed:\n{message[2]}"
                )

        def stable_deadlock() -> bool:
            """All unfinished workers blocked, and a grace drain moves nothing."""
            grace_deadline = time.time() + self.grace_s
            while time.time() < grace_deadline:
                try:
                    handle(report_queue.get(timeout=self.grace_s / 4))
                except queue_mod.Empty:
                    continue
                if any(state == "running" for state in states.values()) or len(
                    done
                ) == num_devices:
                    return False
            return all(state != "running" for state in states.values()) and bool(
                blocked_details
            )

        while len(done) < num_devices:
            remaining = deadline - time.time()
            if remaining <= 0:
                raise LocalBackendTimeoutError(
                    f"local backend exceeded its {self.timeout_s:.1f}s budget "
                    f"(worker states: {states})"
                )
            try:
                handle(report_queue.get(timeout=min(self.poll_s * 4, remaining)))
            except queue_mod.Empty:
                pass
            if (
                len(done) < num_devices
                and all(state != "running" for state in states.values())
                and blocked_details
                and stable_deadlock()
            ):
                detail = [blocked_details[d] for d in sorted(blocked_details)]
                blocked = sorted(blocked_details)
                blocked_summary = describe_blocked_detail(detail)
                if any(entry.get("head_mismatch") for entry in detail):
                    message = (
                        "communication order mismatch: the posted send/receive "
                        "orders of adjacent workers can never match: "
                        f"{blocked_summary}"
                    )
                else:
                    message = (
                        "execution stalled: workers are waiting on transfers "
                        "whose peer operation is never posted: "
                        f"{blocked_summary}"
                    )
                raise CommunicationDeadlockError(
                    message, blocked_devices=blocked, blocked_detail=detail
                )
        return done

    def _settle_trailing_matches(
        self,
        device_instructions: Sequence[Sequence[PipelineInstruction]],
        done: dict[int, dict],
        channel_order: dict[ChannelId, list[WireKey]],
        transfer_log: list[tuple],
    ) -> None:
        """Complete matches neither worker stayed around to observe.

        A worker only *discovers* matches while draining its queues; a
        sender whose stream ends right after its last post can exit before
        the peer's record arrives.  The transfer still physically completed
        (both records are in the queues, heads matched) — and the simulator
        counts it — so the parent finishes the FIFO matching analytically.
        This only runs for fully completed runs, where every worker posted
        its whole stream, making the per-channel posted sequences exactly
        the Start ops in stream order.
        """
        posted: dict[ChannelId, dict[int, list[tuple[WireKey, bool]]]] = {}
        for device, stream in enumerate(device_instructions):
            for instr in stream:
                if not isinstance(instr, _CommStart):
                    continue
                channel = (
                    (device, instr.peer) if device < instr.peer else (instr.peer, device)
                )
                posted.setdefault(channel, {}).setdefault(device, []).append(
                    (normalize_transfer_key(_transfer_key_for_start(instr)), instr.is_send)
                )
        settle_ms = max((done[d]["finish_ms"] for d in done), default=0.0)
        for channel, sides in posted.items():
            matched = channel_order.get(channel, [])
            a, b = channel
            remaining_a = sides.get(a, [])[len(matched):]
            remaining_b = sides.get(b, [])[len(matched):]
            index = 0
            while index < len(remaining_a) and index < len(remaining_b):
                (key_a, send_a), (key_b, send_b) = remaining_a[index], remaining_b[index]
                if key_a != key_b or send_a == send_b:
                    break
                channel_order.setdefault(channel, []).append(key_a)
                transfer_log.append((key_a, settle_ms, settle_ms))
                index += 1

    def _assemble(
        self,
        device_instructions: Sequence[Sequence[PipelineInstruction]],
        done: dict[int, dict],
        wall_time_s: float,
    ) -> BackendExecutionReport:
        num_devices = len(device_instructions)
        trace = ExecutionTrace()
        transfer_log: list[tuple] = []
        channel_order: dict[ChannelId, list[WireKey]] = {}
        payload_errors = 0
        for device in range(num_devices):
            payload = done[device]
            payload_errors += payload["payload_errors"]
            for signature, start_ms, end_ms, category, microbatch in payload["events"]:
                if category != "compute":
                    continue
                label = "F" if signature[0] == "forward" else "B"
                trace.add(
                    TraceEvent(
                        device=device,
                        name=f"{label}{microbatch}",
                        start_ms=start_ms,
                        end_ms=end_ms,
                        category="compute",
                        microbatch=microbatch,
                    )
                )
            for key, start_ms, end_ms in payload["transfers"]:
                transfer_log.append((key, start_ms, end_ms))
                direction = "act" if key[3] == "activation" else "grad"
                trace.add(
                    TraceEvent(
                        device=key[0],
                        name=f"send-{direction}-{key[2]}",
                        start_ms=start_ms,
                        end_ms=end_ms,
                        category="comm",
                        microbatch=key[2],
                    )
                )
            for peer, order in payload["channel_order"].items():
                channel = (device, peer) if device < peer else (peer, device)
                known = channel_order.get(channel)
                if known is None:
                    channel_order[channel] = list(order)
                else:
                    # A worker that exits early observes a prefix of the
                    # channel's matches; the two sides must agree on the
                    # shared prefix (a divergence is a protocol bug), and
                    # the longer observation wins.
                    short, long = sorted((known, list(order)), key=len)
                    if long[: len(short)] != short:
                        raise BackendWorkerError(
                            f"channel {channel} matched in different orders on "
                            f"its two sides: {known} vs {list(order)}"
                        )
                    channel_order[channel] = long
        self._settle_trailing_matches(
            device_instructions, done, channel_order, transfer_log
        )
        transfer_log.sort(key=lambda entry: (entry[2], entry[0]))
        result = ExecutionResult(
            makespan_ms=max((done[d]["finish_ms"] for d in range(num_devices)), default=0.0),
            device_finish_ms=[done[d]["finish_ms"] for d in range(num_devices)],
            device_compute_ms=[done[d]["busy_ms"] for d in range(num_devices)],
            peak_memory_bytes=[done[d]["peak_bytes"] for d in range(num_devices)],
            transfer_log=transfer_log,
            trace=trace,
        )
        return BackendExecutionReport(
            backend=self.name,
            result=result,
            device_event_order=[list(done[d]["executed"]) for d in range(num_devices)],
            channel_transfer_order=channel_order,
            wall_time_s=wall_time_s,
            payload_errors=payload_errors,
        )
