"""Pluggable execution backends for the instruction ISA.

The instruction layer (:mod:`repro.instructions.ops`) has two consumers:

* ``"sim"`` — the discrete-event :class:`~repro.simulator.executor.InstructionExecutor`
  behind :class:`~repro.backends.sim.SimBackend`: deterministic virtual
  time, deadlocks detected analytically.  This is the **oracle**.
* ``"local"`` — :class:`~repro.backends.local.LocalBackend`: one worker
  process per device, real queues per channel, sends carrying verifiable
  numpy payloads; a mis-ordered stream really hangs and the watchdog
  converts the hang into the same structured
  :class:`~repro.simulator.executor.CommunicationDeadlockError`.

Both report through :class:`~repro.backends.base.BackendExecutionReport`,
whose conformance fingerprint (per-device completion order + per-channel
transfer matching order) must be identical across backends — the contract
enforced by ``tests/test_backend_conformance.py``.

Usage::

    from repro.backends import BackendOptions, get_backend

    backend = get_backend("local", BackendOptions(compute_duration_fn=f))
    report = backend.run_report(plan.device_instructions)

New backends (e.g. a torch-process one) register with
:func:`register_backend` and become selectable by name everywhere a
backend name is accepted (e.g. ``TrainerConfig.execution_backend``).
"""

from __future__ import annotations

from repro.backends.base import (
    BackendExecutionReport,
    BackendOptions,
    ExecutionBackend,
    channel_order_from_log,
    normalize_transfer_key,
)
from repro.backends.local import (
    BackendWorkerError,
    LocalBackend,
    LocalBackendTimeoutError,
)
from repro.backends.sim import SimBackend

_REGISTRY: dict[str, type[ExecutionBackend]] = {
    SimBackend.name: SimBackend,
    LocalBackend.name: LocalBackend,
}


def available_backends() -> tuple[str, ...]:
    """Names of the registered execution backends."""
    return tuple(sorted(_REGISTRY))


def register_backend(name: str, backend_cls: type[ExecutionBackend]) -> None:
    """Register a backend class under ``name`` (overwrites are rejected)."""
    if name in _REGISTRY and _REGISTRY[name] is not backend_cls:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = backend_cls


def get_backend(
    name: str, options: BackendOptions | None = None, **kwargs
) -> ExecutionBackend:
    """Instantiate a registered backend.

    Args:
        name: Registry name (``"sim"``, ``"local"``, ...).
        options: Shared :class:`~repro.backends.base.BackendOptions`.
        **kwargs: Backend-specific knobs (e.g. the local backend's
            ``timeout_s``), passed through to the constructor.
    """
    try:
        backend_cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; available: {available_backends()}"
        ) from None
    return backend_cls(options, **kwargs)


__all__ = [
    "BackendExecutionReport",
    "BackendOptions",
    "BackendWorkerError",
    "ExecutionBackend",
    "LocalBackend",
    "LocalBackendTimeoutError",
    "SimBackend",
    "available_backends",
    "channel_order_from_log",
    "get_backend",
    "normalize_transfer_key",
    "register_backend",
]
