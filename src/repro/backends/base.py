"""Execution-backend interface.

The instruction layer (:mod:`repro.instructions.ops`) is an ISA: an
execution plan is one ordered stream of instructions per (virtual) device.
An *execution backend* is anything that can run those streams end to end
under the paper's channel semantics (§2.3/§6):

* ``Forward``/``Backward`` occupy the device's compute stream;
* ``*Start`` ops post a transfer asynchronously onto the single FIFO
  channel shared with the peer device;
* ``Wait*`` ops block the compute stream until the transfer completed;
* a channel completes a transfer only when the *heads* of both sides'
  posted FIFOs name the same transfer from opposite ends (the NCCL
  constraint) — mismatched heads mean the execution can never finish.

Two backends ship with the reproduction:

* ``"sim"`` — :class:`repro.simulator.executor.InstructionExecutor`, the
  discrete-event reference implementation (deterministic virtual time,
  deadlocks *detected analytically*);
* ``"local"`` — :class:`repro.backends.local.LocalBackend`, one worker
  process per device with real queues, where a mis-ordered stream really
  hangs and a watchdog converts the hang into the same structured
  :class:`~repro.simulator.executor.CommunicationDeadlockError`.

Every backend reports through :class:`BackendExecutionReport`, whose
:meth:`~BackendExecutionReport.conformance_fingerprint` is the structure the
differential ISA-conformance suite compares across backends: per-device
instruction completion order and per-channel transfer matching order.
Timing (makespans, wall clocks) is deliberately *not* part of the
fingerprint — the simulator runs in virtual milliseconds, the local backend
in real wall time — but the ordering contract is backend-independent.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.instructions.ops import PipelineInstruction
from repro.simulator.executor import (
    ComputeDurationFn,
    ExecutionResult,
    TransferKey,
    TransferTimeFn,
)

#: A channel is the unordered pair of devices it connects.
ChannelId = tuple[int, int]


def normalize_transfer_key(
    key: TransferKey | tuple[int, int, int, str],
) -> tuple[int, int, int, str]:
    """JSON-safe, backend-independent form of a transfer key.

    Accepts both the simulator's in-memory keys (``CommDirection`` member)
    and already-normalised wire keys (direction value string).
    """
    sender, receiver, microbatch, direction = key
    value = direction.value if hasattr(direction, "value") else str(direction)
    return (int(sender), int(receiver), int(microbatch), value)


def channel_of_key(key: TransferKey | tuple[int, int, int, str]) -> ChannelId:
    """The channel (unordered device pair) a transfer key belongs to."""
    sender, receiver = int(key[0]), int(key[1])
    return (sender, receiver) if sender < receiver else (receiver, sender)


def channel_order_from_log(
    transfer_log: Sequence[tuple[TransferKey, float, float]],
) -> dict[ChannelId, list[tuple[int, int, int, str]]]:
    """Per-channel transfer completion order from an executor transfer log.

    The log is appended in match order, so its per-channel subsequence *is*
    the order in which the channel's FIFO heads matched.
    """
    order: dict[ChannelId, list[tuple[int, int, int, str]]] = {}
    for key, _start, _end in transfer_log:
        order.setdefault(channel_of_key(key), []).append(normalize_transfer_key(key))
    return order


@dataclass
class BackendExecutionReport:
    """What a backend reports for one executed set of instruction streams.

    Attributes:
        backend: Registry name of the backend that produced the report.
        result: The :class:`~repro.simulator.executor.ExecutionResult`
            (makespan, per-device busy time, memory peaks, transfer log,
            trace).  For the local backend, times are wall-clock ms.
        device_event_order: Per device, the signatures (see
            :func:`repro.instructions.serialization.instruction_signature`)
            of the instructions it completed, in completion order.
        channel_transfer_order: Per channel, the normalised transfer keys in
            the order the channel matched them.
        wall_time_s: Real time the run took.
        payload_errors: Transfers whose delivered payload did not verify
            against the expected contents (always 0 for the simulator,
            which moves no payloads).
    """

    backend: str
    result: ExecutionResult
    device_event_order: list[list[tuple[str, int, int, int]]]
    channel_transfer_order: dict[ChannelId, list[tuple[int, int, int, str]]]
    wall_time_s: float = 0.0
    payload_errors: int = 0

    def conformance_fingerprint(self) -> dict[str, Any]:
        """The backend-independent portion of the report.

        Two conforming backends running the same streams must produce equal
        fingerprints; the differential suite asserts exactly this.
        """
        return {
            "device_event_order": [list(events) for events in self.device_event_order],
            "channel_transfer_order": {
                channel: list(keys)
                for channel, keys in sorted(self.channel_transfer_order.items())
            },
            "completed_transfers": sorted(
                normalize_transfer_key(key) for key, _s, _e in self.result.transfer_log
            ),
        }


@dataclass
class BackendOptions:
    """Constructor arguments shared by every execution backend.

    Mirrors :class:`~repro.simulator.executor.InstructionExecutor`'s
    signature so the simulator is simply the reference implementation of
    the interface.

    Attributes:
        compute_duration_fn: Maps Forward/Backward instructions to ms of
            (virtual) compute.  Backends that run out-of-process evaluate
            this in the parent and ship plain floats to the workers.
        transfer_time_fn: Maps (nbytes, src, dst) to transfer ms (virtual
            backends only; real backends move actual payloads instead).
        activation_bytes_fn: Maps compute instructions to the activation
            bytes they allocate/free on their stage.
        static_bytes: Per-device static memory for the trackers.
        device_capacity: Optional per-device capacity for the trackers.
    """

    compute_duration_fn: ComputeDurationFn = field(default=lambda instr: 0.0)
    transfer_time_fn: TransferTimeFn | None = None
    activation_bytes_fn: Callable[[PipelineInstruction], float] | None = None
    static_bytes: Sequence[float] | None = None
    device_capacity: float | None = None


class ExecutionBackend(abc.ABC):
    """A consumer of the instruction ISA that can run streams end to end."""

    #: Registry name (``"sim"``, ``"local"``, ...).
    name: str = "abstract"

    @abc.abstractmethod
    def run(
        self, device_instructions: Sequence[Sequence[PipelineInstruction]]
    ) -> ExecutionResult:
        """Execute the streams; raise
        :class:`~repro.simulator.executor.CommunicationDeadlockError` when
        they cannot run to completion."""

    @abc.abstractmethod
    def run_report(
        self, device_instructions: Sequence[Sequence[PipelineInstruction]]
    ) -> BackendExecutionReport:
        """Execute the streams and return the full conformance report."""
