"""The cost model consumed by the planners.

The :class:`CostModel` answers the three questions every planner decision
needs (paper §3):

* how long does the forward / backward pass of micro-batch ``M`` take on
  pipeline stage ``j``?
* how much activation memory does ``M`` pin on stage ``j`` until its
  backward pass?
* how much static memory does stage ``j`` consume (so how much device memory
  is left for activations)?

Answers are obtained from the interpolated per-layer profiles multiplied by
the number of layers assigned to the stage, plus the stage's communication
terms.  The same object also provides the Eq. 1 iteration-time estimate used
by the micro-batch DP and the communication tensor sizes used by the
communication planner.

Batched fast path
-----------------

The planner evaluates thousands of candidate micro-batch shapes per
iteration, so the scalar query chain (one interpolator call per stage per
shape) is the planning-time bottleneck.  :meth:`CostModel.stage_costs_many`
and :meth:`CostModel.microbatch_times_ms` /
:meth:`CostModel.microbatch_activation_bytes_many` answer the same questions
for a whole batch of shapes in a handful of numpy passes (via
:meth:`~repro.costmodel.interpolation.GridInterpolator.query_many`),
bit-identical to the scalar path.  All results are memoised in per-instance
shape-keyed caches, so recomputation-mode retries, the injection-order
search, and repeated schedule builds never re-query the interpolators for a
shape they have already seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.device import A100_40GB, DeviceSpec
from repro.costmodel.profiler import LayerProfiler, ProfileDatabase
from repro.model.config import ModelConfig
from repro.model.flops import DTYPE_BYTES
from repro.model.memory import RecomputeMode, static_stage_bytes
from repro.model.transformer import (
    LayerAssignment,
    MicroBatchShape,
    assign_layers,
)

#: Soft cap on the per-instance shape caches; a long-lived planner sees a
#: bounded set of padded shapes in practice, so this only guards pathological
#: workloads from unbounded memory growth.
_CACHE_LIMIT = 1 << 20


@dataclass(frozen=True)
class StageCost:
    """Cost of one micro-batch on one pipeline stage.

    Attributes:
        forward_ms: Forward-pass execution time.
        backward_ms: Backward-pass execution time (includes recomputation).
        activation_bytes: Activation memory pinned between forward and
            backward.
    """

    forward_ms: float
    backward_ms: float
    activation_bytes: float

    @property
    def total_ms(self) -> float:
        """Forward plus backward time, the ``t(M)`` of the paper's Eq. 1."""
        return self.forward_ms + self.backward_ms


class CostModel:
    """Per-stage execution time and memory estimates for one model replica.

    Args:
        config: Model configuration.
        num_stages: Number of pipeline stages.
        tensor_parallel: Tensor-parallel degree within each stage.
        zero_shards: Number of ZeRO optimizer-state shards (data-parallel
            degree when ZeRO-1 is enabled, else 1).
        device_spec: Device the stages run on.
        database: Optional pre-built profile database; profiled on demand if
            omitted.
        max_profile_batch_size / max_profile_seq_len: Grid extents used when
            profiling on demand.
    """

    def __init__(
        self,
        config: ModelConfig,
        num_stages: int,
        tensor_parallel: int = 1,
        zero_shards: int = 1,
        device_spec: DeviceSpec = A100_40GB,
        database: ProfileDatabase | None = None,
        max_profile_batch_size: int = 128,
        max_profile_seq_len: int = 8192,
    ) -> None:
        self.config = config
        self.num_stages = num_stages
        self.tensor_parallel = tensor_parallel
        self.zero_shards = zero_shards
        self.device_spec = device_spec
        self.assignments: list[LayerAssignment] = assign_layers(config, num_stages)
        if database is None:
            profiler = LayerProfiler(config, tensor_parallel, device_spec)
            database = profiler.build_database(
                max_batch_size=max_profile_batch_size, max_seq_len=max_profile_seq_len
            )
        self.database = database
        # Per-instance caches (a dict rather than ``lru_cache`` on methods,
        # which would pin every CostModel instance in the global cache).
        self._stage_cost_cache: dict[
            tuple[int, MicroBatchShape, RecomputeMode], StageCost
        ] = {}
        #: (shape, mode) -> (bottleneck total_ms, forward_ms, activation_bytes)
        self._bottleneck_cache: dict[
            tuple[MicroBatchShape, RecomputeMode], tuple[float, float, float]
        ] = {}
        self._static_bytes_cache: dict[int, float] = {}
        # One-slot (key, tables) memo for the stage-independent per-layer
        # interpolation pass: per-stage loops (duration_map, activation
        # matrices, peak memory) query the same shape batch once per stage,
        # and the tables depend only on (shapes, mode).  A single tuple slot
        # keeps replacement atomic for concurrent planners.
        self._layer_tables_memo: tuple[tuple, dict[str, np.ndarray | None]] | None = None

    # ------------------------------------------------------------------ stage costs

    def stage_cost(
        self,
        stage: int,
        shape: MicroBatchShape,
        recompute: RecomputeMode = RecomputeMode.NONE,
    ) -> StageCost:
        """Forward/backward time and activation memory of ``shape`` on ``stage``."""
        key = (stage, shape, recompute)
        cached = self._stage_cost_cache.get(key)
        if cached is not None:
            return cached
        assignment = self._assignment(stage)
        forward = 0.0
        backward = 0.0
        activation = 0.0

        if assignment.encoder_layers:
            profile = self.database.get("encoder")
            coords = (shape.batch_size, shape.enc_seq_len)
            if coords[1] > 0:
                forward += assignment.encoder_layers * profile.query_forward(*coords)
                backward += assignment.encoder_layers * profile.query_backward(recompute, *coords)
                activation += assignment.encoder_layers * profile.query_activation(
                    recompute, *coords
                )

        if assignment.decoder_layers:
            if self.config.is_encoder_decoder:
                profile = self.database.get("decoder")
                coords3 = (shape.batch_size, shape.dec_seq_len, shape.enc_seq_len)
                if shape.dec_seq_len > 0:
                    forward += assignment.decoder_layers * profile.query_forward(*coords3)
                    backward += assignment.decoder_layers * profile.query_backward(
                        recompute, *coords3
                    )
                    activation += assignment.decoder_layers * profile.query_activation(
                        recompute, *coords3
                    )
            else:
                profile = self.database.get("encoder")
                coords = (shape.batch_size, shape.enc_seq_len)
                if coords[1] > 0:
                    forward += assignment.decoder_layers * profile.query_forward(*coords)
                    backward += assignment.decoder_layers * profile.query_backward(
                        recompute, *coords
                    )
                    activation += assignment.decoder_layers * profile.query_activation(
                        recompute, *coords
                    )

        cost = StageCost(forward_ms=forward, backward_ms=backward, activation_bytes=activation)
        self._cache_guard(self._stage_cost_cache)
        self._stage_cost_cache[key] = cost
        return cost

    def _assignment(self, stage: int) -> LayerAssignment:
        if not 0 <= stage < self.num_stages:
            raise ValueError(f"stage {stage} out of range [0, {self.num_stages})")
        return self.assignments[stage]

    @staticmethod
    def _cache_guard(cache: dict) -> None:
        if len(cache) >= _CACHE_LIMIT:
            cache.clear()

    # ------------------------------------------------------------------ batched queries

    def _layer_tables(
        self, shapes: Sequence[MicroBatchShape], recompute: RecomputeMode
    ) -> dict[str, np.ndarray | None]:
        """Per-layer cost arrays for a batch of :class:`MicroBatchShape`."""
        key = (tuple(shapes), recompute)
        memo = self._layer_tables_memo
        if memo is not None and memo[0] == key:
            return memo[1]
        tables = self._layer_tables_arrays(
            np.array([s.batch_size for s in shapes], dtype=float),
            np.array([s.enc_seq_len for s in shapes], dtype=float),
            np.array([s.dec_seq_len for s in shapes], dtype=float),
            recompute,
        )
        self._layer_tables_memo = (key, tables)
        return tables

    def _layer_tables_arrays(
        self,
        batch: np.ndarray,
        enc: np.ndarray,
        dec: np.ndarray,
        recompute: RecomputeMode,
    ) -> dict[str, np.ndarray | None]:
        """Per-layer forward/backward/activation arrays for a batch of shapes.

        ``enc_*`` entries cover encoder (and GPT decoder-only) layers,
        ``dec_*`` entries cover T5 decoder layers (``None`` for decoder-only
        models, whose decoder layers share the encoder profile).  Entries for
        shapes whose relevant sequence length is zero are zeroed, mirroring
        the scalar guards in :meth:`stage_cost`.
        """
        batch = np.asarray(batch, dtype=float)
        enc = np.asarray(enc, dtype=float)
        dec = np.asarray(dec, dtype=float)
        enc_profile = self.database.get("encoder")
        coords2 = np.stack([batch, enc], axis=1)
        enc_mask = enc > 0
        tables: dict[str, np.ndarray | None] = {
            "enc_fwd": np.where(enc_mask, enc_profile.query_forward_many(coords2), 0.0),
            "enc_bwd": np.where(
                enc_mask, enc_profile.query_backward_many(recompute, coords2), 0.0
            ),
            "enc_act": np.where(
                enc_mask, enc_profile.query_activation_many(recompute, coords2), 0.0
            ),
            "dec_fwd": None,
            "dec_bwd": None,
            "dec_act": None,
        }
        if self.config.is_encoder_decoder:
            dec_profile = self.database.get("decoder")
            coords3 = np.stack([batch, dec, enc], axis=1)
            dec_mask = dec > 0
            tables["dec_fwd"] = np.where(
                dec_mask, dec_profile.query_forward_many(coords3), 0.0
            )
            tables["dec_bwd"] = np.where(
                dec_mask, dec_profile.query_backward_many(recompute, coords3), 0.0
            )
            tables["dec_act"] = np.where(
                dec_mask, dec_profile.query_activation_many(recompute, coords3), 0.0
            )
        return tables

    def _assignment_costs(
        self,
        assignment: LayerAssignment,
        tables: dict[str, np.ndarray | None],
        count: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(forward, backward, activation) arrays of one stage assignment.

        Accumulates the encoder then decoder contributions in the same order
        as the scalar :meth:`stage_cost`, so results are bit-identical.
        """
        forward = np.zeros(count)
        backward = np.zeros(count)
        activation = np.zeros(count)
        if assignment.encoder_layers:
            forward = forward + assignment.encoder_layers * tables["enc_fwd"]
            backward = backward + assignment.encoder_layers * tables["enc_bwd"]
            activation = activation + assignment.encoder_layers * tables["enc_act"]
        if assignment.decoder_layers:
            if self.config.is_encoder_decoder:
                forward = forward + assignment.decoder_layers * tables["dec_fwd"]
                backward = backward + assignment.decoder_layers * tables["dec_bwd"]
                activation = activation + assignment.decoder_layers * tables["dec_act"]
            else:
                forward = forward + assignment.decoder_layers * tables["enc_fwd"]
                backward = backward + assignment.decoder_layers * tables["enc_bwd"]
                activation = activation + assignment.decoder_layers * tables["enc_act"]
        return forward, backward, activation

    def stage_costs_many(
        self,
        stage: int,
        shapes: Sequence[MicroBatchShape],
        recompute: RecomputeMode = RecomputeMode.NONE,
    ) -> list[StageCost]:
        """Batched :meth:`stage_cost` for many shapes on one stage.

        Cached results are reused; the remaining shapes are evaluated in one
        vectorized interpolator pass.
        """
        assignment = self._assignment(stage)
        results: dict[MicroBatchShape, StageCost] = {}
        missing: list[MicroBatchShape] = []
        for shape in shapes:
            if shape in results:
                continue
            cached = self._stage_cost_cache.get((stage, shape, recompute))
            if cached is not None:
                results[shape] = cached
            else:
                results[shape] = StageCost(0.0, 0.0, 0.0)  # placeholder
                missing.append(shape)
        if missing:
            tables = self._layer_tables(missing, recompute)
            forward, backward, activation = self._assignment_costs(
                assignment, tables, len(missing)
            )
            self._cache_guard(self._stage_cost_cache)
            for i, shape in enumerate(missing):
                cost = StageCost(
                    forward_ms=float(forward[i]),
                    backward_ms=float(backward[i]),
                    activation_bytes=float(activation[i]),
                )
                results[shape] = cost
                self._stage_cost_cache[(stage, shape, recompute)] = cost
        return [results[shape] for shape in shapes]

    def _bottleneck_arrays(
        self,
        batch: np.ndarray,
        enc: np.ndarray,
        dec: np.ndarray,
        recompute: RecomputeMode,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(total_ms, forward_ms, activation_bytes) bottleneck arrays."""
        tables = self._layer_tables_arrays(batch, enc, dec, recompute)
        # Stages sharing a layer assignment have identical costs, so the
        # bottleneck max only needs one evaluation per distinct assignment.
        distinct = {(a.encoder_layers, a.decoder_layers): a for a in self.assignments}
        totals, forwards, activations = [], [], []
        for assignment in distinct.values():
            forward, backward, activation = self._assignment_costs(
                assignment, tables, len(batch)
            )
            totals.append(forward + backward)
            forwards.append(forward)
            activations.append(activation)
        return (
            np.max(totals, axis=0),
            np.max(forwards, axis=0),
            np.max(activations, axis=0),
        )

    def window_costs_arrays(
        self,
        batch: np.ndarray,
        enc: np.ndarray,
        dec: np.ndarray,
        recompute: RecomputeMode = RecomputeMode.NONE,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bottleneck (time_ms, activation_bytes) for raw shape coordinate arrays.

        The uncached bulk entry point of the planner fast path: the DP's
        window-shape table holds tens of thousands of unique shapes per
        mini-batch, for which per-shape cache bookkeeping costs more than the
        batched interpolation itself.
        """
        total, _, activation = self._bottleneck_arrays(batch, enc, dec, recompute)
        return total, activation

    def _bottleneck_many(
        self, shapes: Sequence[MicroBatchShape], recompute: RecomputeMode
    ) -> list[tuple[float, float, float]]:
        """(total_ms, forward_ms, activation_bytes) bottleneck triples (cached)."""
        results: dict[MicroBatchShape, tuple[float, float, float]] = {}
        missing: list[MicroBatchShape] = []
        for shape in shapes:
            if shape in results:
                continue
            cached = self._bottleneck_cache.get((shape, recompute))
            if cached is not None:
                results[shape] = cached
            else:
                results[shape] = (0.0, 0.0, 0.0)  # placeholder
                missing.append(shape)
        if missing:
            total, forward, activation = self._bottleneck_arrays(
                np.array([s.batch_size for s in missing], dtype=float),
                np.array([s.enc_seq_len for s in missing], dtype=float),
                np.array([s.dec_seq_len for s in missing], dtype=float),
                recompute,
            )
            self._cache_guard(self._bottleneck_cache)
            for i, shape in enumerate(missing):
                triple = (float(total[i]), float(forward[i]), float(activation[i]))
                results[shape] = triple
                self._bottleneck_cache[(shape, recompute)] = triple
        return [results[shape] for shape in shapes]

    def microbatch_times_ms(
        self,
        shapes: Sequence[MicroBatchShape],
        recompute: RecomputeMode = RecomputeMode.NONE,
    ) -> np.ndarray:
        """Batched :meth:`microbatch_time_ms`: ``t(M)`` for many shapes."""
        return np.array([t for t, _, _ in self._bottleneck_many(shapes, recompute)])

    def microbatch_activation_bytes_many(
        self,
        shapes: Sequence[MicroBatchShape],
        recompute: RecomputeMode = RecomputeMode.NONE,
    ) -> np.ndarray:
        """Batched :meth:`microbatch_activation_bytes` for many shapes."""
        return np.array([a for _, _, a in self._bottleneck_many(shapes, recompute)])

    # ------------------------------------------------------------------ aggregates

    def microbatch_time_ms(
        self, shape: MicroBatchShape, recompute: RecomputeMode = RecomputeMode.NONE
    ) -> float:
        """``t(M)``: execution time of the bottleneck stage for ``shape``.

        The paper's Eq. 1 models the iteration time using the per-micro-batch
        time on the (bottleneck) stage; with balanced layer assignment all
        stages are close, and using the maximum keeps the estimate an upper
        bound.
        """
        return self._bottleneck_many([shape], recompute)[0][0]

    def microbatch_forward_ms(
        self, shape: MicroBatchShape, recompute: RecomputeMode = RecomputeMode.NONE
    ) -> float:
        """Forward time of the bottleneck stage for ``shape``."""
        return self._bottleneck_many([shape], recompute)[0][1]

    def microbatch_activation_bytes(
        self, shape: MicroBatchShape, recompute: RecomputeMode = RecomputeMode.NONE
    ) -> float:
        """Largest per-stage activation footprint of ``shape``."""
        return self._bottleneck_many([shape], recompute)[0][2]

    def iteration_time_ms(
        self,
        shapes: list[MicroBatchShape],
        recompute: RecomputeMode = RecomputeMode.NONE,
    ) -> float:
        """Eq. 1 iteration-time estimate for a set of micro-batches.

        ``(c - 1) · max t(M) + Σ t(M)`` where ``c`` is the number of stages.
        """
        if not shapes:
            return 0.0
        times = [t for t, _, _ in self._bottleneck_many(shapes, recompute)]
        return (self.num_stages - 1) * max(times) + sum(times)

    # ------------------------------------------------------------------ memory

    def stage_static_bytes(self, stage: int) -> float:
        """Static memory (weights, grads, optimizer state, workspace) of ``stage``."""
        cached = self._static_bytes_cache.get(stage)
        if cached is not None:
            return cached
        assignment = self._assignment(stage)
        value = static_stage_bytes(
            self.config,
            max(assignment.total_layers, 1),
            tensor_parallel=self.tensor_parallel,
            zero_shards=self.zero_shards,
        )
        self._static_bytes_cache[stage] = value
        return value

    def activation_budget_bytes(self, stage: int, device_memory: float | None = None) -> float:
        """Device memory available for activations on ``stage``."""
        capacity = device_memory if device_memory is not None else self.device_spec.memory_capacity
        return max(capacity - self.stage_static_bytes(stage), 0.0)

    def min_activation_budget_bytes(self, device_memory: float | None = None) -> float:
        """The tightest activation budget across all stages."""
        return min(
            self.activation_budget_bytes(stage, device_memory)
            for stage in range(self.num_stages)
        )

    def peak_memory_bytes(
        self,
        shapes: list[MicroBatchShape],
        in_flight: int | None = None,
        recompute: RecomputeMode = RecomputeMode.NONE,
    ) -> float:
        """Estimated peak device memory across stages.

        Under 1F1B the first stage holds up to ``c`` in-flight micro-batch
        activations; ``in_flight`` overrides that count for other schedules.
        The estimate uses the largest ``in_flight`` activation footprints,
        which is what the paper's memory cost model predicts (Fig. 18b).
        """
        if not shapes:
            return max(self.stage_static_bytes(s) for s in range(self.num_stages))
        window = in_flight if in_flight is not None else self.num_stages
        window = max(1, min(window, len(shapes)))
        peak = 0.0
        for stage in range(self.num_stages):
            costs = self.stage_costs_many(stage, shapes, recompute)
            footprints = sorted(
                (cost.activation_bytes for cost in costs), reverse=True
            )
            stage_peak = self.stage_static_bytes(stage) + sum(footprints[:window])
            peak = max(peak, stage_peak)
        return peak

    # ------------------------------------------------------------------ communication

    def boundary_tensor_bytes(self, stage: int, shape: MicroBatchShape) -> float:
        """Bytes of the activation tensor sent from ``stage`` to ``stage + 1``.

        The boundary activation is ``batch × seq × hidden`` (per tensor
        parallel shard); T5 stages that feed decoder stages additionally
        forward the encoder output for cross-attention.
        """
        assignment = self._assignment(stage)
        h = self.config.hidden_size
        per_token = DTYPE_BYTES * h / self.tensor_parallel
        if not self.config.is_encoder_decoder:
            return shape.batch_size * shape.enc_seq_len * per_token
        total = shape.batch_size * shape.enc_seq_len * per_token
        if assignment.decoder_layers:
            total += shape.batch_size * shape.dec_seq_len * per_token
        return total
