"""The cost model consumed by the planners.

The :class:`CostModel` answers the three questions every planner decision
needs (paper §3):

* how long does the forward / backward pass of micro-batch ``M`` take on
  pipeline stage ``j``?
* how much activation memory does ``M`` pin on stage ``j`` until its
  backward pass?
* how much static memory does stage ``j`` consume (so how much device memory
  is left for activations)?

Answers are obtained from the interpolated per-layer profiles multiplied by
the number of layers assigned to the stage, plus the stage's communication
terms.  The same object also provides the Eq. 1 iteration-time estimate used
by the micro-batch DP and the communication tensor sizes used by the
communication planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.cluster.device import A100_40GB, DeviceSpec
from repro.costmodel.profiler import LayerProfiler, ProfileDatabase
from repro.model.config import ModelConfig
from repro.model.flops import DTYPE_BYTES
from repro.model.memory import RecomputeMode, static_stage_bytes
from repro.model.transformer import (
    LayerAssignment,
    MicroBatchShape,
    assign_layers,
)


@dataclass(frozen=True)
class StageCost:
    """Cost of one micro-batch on one pipeline stage.

    Attributes:
        forward_ms: Forward-pass execution time.
        backward_ms: Backward-pass execution time (includes recomputation).
        activation_bytes: Activation memory pinned between forward and
            backward.
    """

    forward_ms: float
    backward_ms: float
    activation_bytes: float

    @property
    def total_ms(self) -> float:
        """Forward plus backward time, the ``t(M)`` of the paper's Eq. 1."""
        return self.forward_ms + self.backward_ms


class CostModel:
    """Per-stage execution time and memory estimates for one model replica.

    Args:
        config: Model configuration.
        num_stages: Number of pipeline stages.
        tensor_parallel: Tensor-parallel degree within each stage.
        zero_shards: Number of ZeRO optimizer-state shards (data-parallel
            degree when ZeRO-1 is enabled, else 1).
        device_spec: Device the stages run on.
        database: Optional pre-built profile database; profiled on demand if
            omitted.
        max_profile_batch_size / max_profile_seq_len: Grid extents used when
            profiling on demand.
    """

    def __init__(
        self,
        config: ModelConfig,
        num_stages: int,
        tensor_parallel: int = 1,
        zero_shards: int = 1,
        device_spec: DeviceSpec = A100_40GB,
        database: ProfileDatabase | None = None,
        max_profile_batch_size: int = 128,
        max_profile_seq_len: int = 8192,
    ) -> None:
        self.config = config
        self.num_stages = num_stages
        self.tensor_parallel = tensor_parallel
        self.zero_shards = zero_shards
        self.device_spec = device_spec
        self.assignments: list[LayerAssignment] = assign_layers(config, num_stages)
        if database is None:
            profiler = LayerProfiler(config, tensor_parallel, device_spec)
            database = profiler.build_database(
                max_batch_size=max_profile_batch_size, max_seq_len=max_profile_seq_len
            )
        self.database = database

    # ------------------------------------------------------------------ stage costs

    def stage_cost(
        self,
        stage: int,
        shape: MicroBatchShape,
        recompute: RecomputeMode = RecomputeMode.NONE,
    ) -> StageCost:
        """Forward/backward time and activation memory of ``shape`` on ``stage``."""
        assignment = self._assignment(stage)
        forward = 0.0
        backward = 0.0
        activation = 0.0

        if assignment.encoder_layers:
            profile = self.database.get("encoder")
            if self.config.is_encoder_decoder:
                coords = (shape.batch_size, shape.enc_seq_len)
            else:
                coords = (shape.batch_size, shape.enc_seq_len)
            if coords[1] > 0:
                forward += assignment.encoder_layers * profile.query_forward(*coords)
                backward += assignment.encoder_layers * profile.query_backward(recompute, *coords)
                activation += assignment.encoder_layers * profile.query_activation(
                    recompute, *coords
                )

        if assignment.decoder_layers:
            if self.config.is_encoder_decoder:
                profile = self.database.get("decoder")
                coords3 = (shape.batch_size, shape.dec_seq_len, shape.enc_seq_len)
                if shape.dec_seq_len > 0:
                    forward += assignment.decoder_layers * profile.query_forward(*coords3)
                    backward += assignment.decoder_layers * profile.query_backward(
                        recompute, *coords3
                    )
                    activation += assignment.decoder_layers * profile.query_activation(
                        recompute, *coords3
                    )
            else:
                profile = self.database.get("encoder")
                coords = (shape.batch_size, shape.enc_seq_len)
                if coords[1] > 0:
                    forward += assignment.decoder_layers * profile.query_forward(*coords)
                    backward += assignment.decoder_layers * profile.query_backward(
                        recompute, *coords
                    )
                    activation += assignment.decoder_layers * profile.query_activation(
                        recompute, *coords
                    )

        return StageCost(forward_ms=forward, backward_ms=backward, activation_bytes=activation)

    def _assignment(self, stage: int) -> LayerAssignment:
        if not 0 <= stage < self.num_stages:
            raise ValueError(f"stage {stage} out of range [0, {self.num_stages})")
        return self.assignments[stage]

    # ------------------------------------------------------------------ aggregates

    def microbatch_time_ms(
        self, shape: MicroBatchShape, recompute: RecomputeMode = RecomputeMode.NONE
    ) -> float:
        """``t(M)``: execution time of the bottleneck stage for ``shape``.

        The paper's Eq. 1 models the iteration time using the per-micro-batch
        time on the (bottleneck) stage; with balanced layer assignment all
        stages are close, and using the maximum keeps the estimate an upper
        bound.
        """
        return max(
            self.stage_cost(stage, shape, recompute).total_ms
            for stage in range(self.num_stages)
        )

    def microbatch_forward_ms(
        self, shape: MicroBatchShape, recompute: RecomputeMode = RecomputeMode.NONE
    ) -> float:
        """Forward time of the bottleneck stage for ``shape``."""
        return max(
            self.stage_cost(stage, shape, recompute).forward_ms
            for stage in range(self.num_stages)
        )

    def microbatch_activation_bytes(
        self, shape: MicroBatchShape, recompute: RecomputeMode = RecomputeMode.NONE
    ) -> float:
        """Largest per-stage activation footprint of ``shape``."""
        return max(
            self.stage_cost(stage, shape, recompute).activation_bytes
            for stage in range(self.num_stages)
        )

    def iteration_time_ms(
        self,
        shapes: list[MicroBatchShape],
        recompute: RecomputeMode = RecomputeMode.NONE,
    ) -> float:
        """Eq. 1 iteration-time estimate for a set of micro-batches.

        ``(c - 1) · max t(M) + Σ t(M)`` where ``c`` is the number of stages.
        """
        if not shapes:
            return 0.0
        times = [self.microbatch_time_ms(s, recompute) for s in shapes]
        return (self.num_stages - 1) * max(times) + sum(times)

    # ------------------------------------------------------------------ memory

    @lru_cache(maxsize=None)
    def stage_static_bytes(self, stage: int) -> float:
        """Static memory (weights, grads, optimizer state, workspace) of ``stage``."""
        assignment = self._assignment(stage)
        return static_stage_bytes(
            self.config,
            max(assignment.total_layers, 1),
            tensor_parallel=self.tensor_parallel,
            zero_shards=self.zero_shards,
        )

    def activation_budget_bytes(self, stage: int, device_memory: float | None = None) -> float:
        """Device memory available for activations on ``stage``."""
        capacity = device_memory if device_memory is not None else self.device_spec.memory_capacity
        return max(capacity - self.stage_static_bytes(stage), 0.0)

    def min_activation_budget_bytes(self, device_memory: float | None = None) -> float:
        """The tightest activation budget across all stages."""
        return min(
            self.activation_budget_bytes(stage, device_memory)
            for stage in range(self.num_stages)
        )

    def peak_memory_bytes(
        self,
        shapes: list[MicroBatchShape],
        in_flight: int | None = None,
        recompute: RecomputeMode = RecomputeMode.NONE,
    ) -> float:
        """Estimated peak device memory across stages.

        Under 1F1B the first stage holds up to ``c`` in-flight micro-batch
        activations; ``in_flight`` overrides that count for other schedules.
        The estimate uses the largest ``in_flight`` activation footprints,
        which is what the paper's memory cost model predicts (Fig. 18b).
        """
        if not shapes:
            return max(self.stage_static_bytes(s) for s in range(self.num_stages))
        window = in_flight if in_flight is not None else self.num_stages
        window = max(1, min(window, len(shapes)))
        peak = 0.0
        for stage in range(self.num_stages):
            footprints = sorted(
                (self.stage_cost(stage, s, recompute).activation_bytes for s in shapes),
                reverse=True,
            )
            stage_peak = self.stage_static_bytes(stage) + sum(footprints[:window])
            peak = max(peak, stage_peak)
        return peak

    # ------------------------------------------------------------------ communication

    def boundary_tensor_bytes(self, stage: int, shape: MicroBatchShape) -> float:
        """Bytes of the activation tensor sent from ``stage`` to ``stage + 1``.

        The boundary activation is ``batch × seq × hidden`` (per tensor
        parallel shard); T5 stages that feed decoder stages additionally
        forward the encoder output for cross-attention.
        """
        assignment = self._assignment(stage)
        h = self.config.hidden_size
        per_token = DTYPE_BYTES * h / self.tensor_parallel
        if not self.config.is_encoder_decoder:
            return shape.batch_size * shape.enc_seq_len * per_token
        total = shape.batch_size * shape.enc_seq_len * per_token
        if assignment.decoder_layers:
            total += shape.batch_size * shape.dec_seq_len * per_token
        return total
