"""Simulated profiling of per-layer execution time and memory.

The real DynaPipe profiles a single Transformer layer on a physical GPU for
every combination of micro-batch size and sequence length at power-of-two
intervals.  Here the "measurement" comes from the analytic
:class:`~repro.cluster.device.SimulatedGPU` with noise disabled — the same
code path the execution simulator uses with noise *enabled*, so the cost
model's predictions and the simulated execution diverge exactly the way
profiled predictions diverge from real runs.

Profiles are stored per layer kind:

* ``encoder`` — GPT decoder-only layers and T5 encoder layers; a 2-D grid
  over (micro-batch size, sequence length).
* ``decoder`` — T5 decoder layers with cross-attention; a 3-D grid over
  (micro-batch size, target length, source length).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cluster.device import A100_40GB, DeviceSpec, SimulatedGPU
from repro.costmodel.interpolation import GridInterpolator
from repro.model.config import ModelConfig
from repro.model.memory import RecomputeMode
from repro.model.transformer import LayerAssignment, MicroBatchShape, StageModel


def _power_of_two_range(low: int, high: int) -> list[int]:
    """Powers of two from ``low`` to ``high`` inclusive (``high`` is included
    even if not an exact power of two)."""
    values = []
    v = low
    while v < high:
        values.append(v)
        v *= 2
    values.append(high)
    return values


def default_profile_grid(
    max_batch_size: int = 128, max_seq_len: int = 8192
) -> tuple[list[int], list[int]]:
    """The power-of-two profiling grid used throughout the reproduction.

    Matches the paper's description: micro-batch sizes 1, 2, 4, … and
    sequence lengths 32, 64, 128, … up to the configured maxima.
    """
    if max_batch_size < 1:
        raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
    if max_seq_len < 32:
        raise ValueError(f"max_seq_len must be >= 32, got {max_seq_len}")
    return _power_of_two_range(1, max_batch_size), _power_of_two_range(32, max_seq_len)


@dataclass
class LayerProfile:
    """Interpolable profile of a single layer kind.

    The interpolators map grid coordinates to milliseconds (time) or bytes
    (activation memory).  Keys of the per-mode dictionaries are
    :class:`~repro.model.memory.RecomputeMode`.
    """

    kind: str
    forward_ms: GridInterpolator
    backward_ms: dict[RecomputeMode, GridInterpolator]
    activation_bytes: dict[RecomputeMode, GridInterpolator]
    dims: int = 2

    def query_forward(self, *coords: float) -> float:
        """Interpolated forward time in milliseconds."""
        return max(self.forward_ms(*coords), 0.0)

    def query_backward(self, mode: RecomputeMode, *coords: float) -> float:
        """Interpolated backward time in milliseconds under ``mode``."""
        return max(self.backward_ms[mode](*coords), 0.0)

    def query_activation(self, mode: RecomputeMode, *coords: float) -> float:
        """Interpolated activation bytes under ``mode``."""
        return max(self.activation_bytes[mode](*coords), 0.0)

    # -------------------------------------------------------------- batched
    # Vectorized counterparts used by the planner fast path: one numpy pass
    # over ``coords`` of shape (num_points, dims), bit-identical to the
    # scalar queries above.

    def query_forward_many(self, coords: np.ndarray) -> np.ndarray:
        """Batched :meth:`query_forward` over ``(num_points, dims)`` coords."""
        return np.maximum(self.forward_ms.query_many(coords), 0.0)

    def query_backward_many(self, mode: RecomputeMode, coords: np.ndarray) -> np.ndarray:
        """Batched :meth:`query_backward` over ``(num_points, dims)`` coords."""
        return np.maximum(self.backward_ms[mode].query_many(coords), 0.0)

    def query_activation_many(self, mode: RecomputeMode, coords: np.ndarray) -> np.ndarray:
        """Batched :meth:`query_activation` over ``(num_points, dims)`` coords."""
        return np.maximum(self.activation_bytes[mode].query_many(coords), 0.0)


@dataclass
class ProfileDatabase:
    """All layer profiles needed to cost a model on a given device."""

    model_name: str
    tensor_parallel: int
    device_name: str
    profiles: dict[str, LayerProfile] = field(default_factory=dict)

    def get(self, kind: str) -> LayerProfile:
        """Fetch the profile for ``kind``; raises ``KeyError`` if missing."""
        if kind not in self.profiles:
            raise KeyError(
                f"no profile for layer kind {kind!r} in database for {self.model_name}"
            )
        return self.profiles[kind]


class LayerProfiler:
    """Profiles single Transformer layers on the simulated device.

    Args:
        config: Model configuration to profile.
        tensor_parallel: Tensor-parallel degree the layers will run under.
        device_spec: Device to profile on (defaults to A100-40GB).
    """

    def __init__(
        self,
        config: ModelConfig,
        tensor_parallel: int = 1,
        device_spec: DeviceSpec = A100_40GB,
    ) -> None:
        self.config = config
        self.tensor_parallel = tensor_parallel
        self.device_spec = device_spec
        # Profiling uses a noise-free device: this is the "measured" profile.
        self._gpu = SimulatedGPU(device_spec, noise_std=0.0)

    def _single_layer_stage(self, kind: str) -> StageModel:
        """A StageModel holding exactly one layer of ``kind``."""
        if kind == "encoder":
            assignment = LayerAssignment(
                stage=0, encoder_layers=1, decoder_layers=0, has_output_projection=False
            )
        elif kind == "decoder":
            assignment = LayerAssignment(
                stage=0, encoder_layers=0, decoder_layers=1, has_output_projection=False
            )
        else:
            raise ValueError(f"unknown layer kind {kind!r}")
        return StageModel(self.config, assignment, tensor_parallel=self.tensor_parallel)

    def profile_encoder_layer(
        self, batch_sizes: Sequence[int], seq_lens: Sequence[int]
    ) -> LayerProfile:
        """Profile an encoder (or GPT) layer over the 2-D grid."""
        stage = self._single_layer_stage("encoder")
        axes = (list(batch_sizes), list(seq_lens))
        shape = (len(axes[0]), len(axes[1]))
        forward = np.zeros(shape)
        backward = {mode: np.zeros(shape) for mode in RecomputeMode}
        activation = {mode: np.zeros(shape) for mode in RecomputeMode}
        for i, b in enumerate(axes[0]):
            for j, s in enumerate(axes[1]):
                mb = MicroBatchShape(batch_size=b, enc_seq_len=s)
                forward[i, j] = stage.forward_time_ms(self._gpu, mb)
                for mode in RecomputeMode:
                    backward[mode][i, j] = stage.backward_time_ms(self._gpu, mb, mode)
                    activation[mode][i, j] = stage.activation_bytes(mb, mode)
        return LayerProfile(
            kind="encoder",
            forward_ms=GridInterpolator(axes, forward),
            backward_ms={m: GridInterpolator(axes, backward[m]) for m in RecomputeMode},
            activation_bytes={m: GridInterpolator(axes, activation[m]) for m in RecomputeMode},
            dims=2,
        )

    def profile_decoder_layer(
        self,
        batch_sizes: Sequence[int],
        target_lens: Sequence[int],
        source_lens: Sequence[int],
    ) -> LayerProfile:
        """Profile a T5 decoder layer over the 3-D grid (batch, target, source)."""
        stage = self._single_layer_stage("decoder")
        axes = (list(batch_sizes), list(target_lens), list(source_lens))
        shape = (len(axes[0]), len(axes[1]), len(axes[2]))
        forward = np.zeros(shape)
        backward = {mode: np.zeros(shape) for mode in RecomputeMode}
        activation = {mode: np.zeros(shape) for mode in RecomputeMode}
        for i, b in enumerate(axes[0]):
            for j, t in enumerate(axes[1]):
                for k, s in enumerate(axes[2]):
                    mb = MicroBatchShape(batch_size=b, enc_seq_len=s, dec_seq_len=t)
                    forward[i, j, k] = stage.forward_time_ms(self._gpu, mb)
                    for mode in RecomputeMode:
                        backward[mode][i, j, k] = stage.backward_time_ms(self._gpu, mb, mode)
                        activation[mode][i, j, k] = stage.activation_bytes(mb, mode)
        return LayerProfile(
            kind="decoder",
            forward_ms=GridInterpolator(axes, forward),
            backward_ms={m: GridInterpolator(axes, backward[m]) for m in RecomputeMode},
            activation_bytes={m: GridInterpolator(axes, activation[m]) for m in RecomputeMode},
            dims=3,
        )

    def build_database(
        self,
        max_batch_size: int = 128,
        max_seq_len: int = 8192,
        decoder_grid_stride: int = 2,
    ) -> ProfileDatabase:
        """Profile every layer kind the model needs and return the database.

        ``decoder_grid_stride`` thins the 3-D decoder grid (every other
        power of two) to keep profiling cheap, mirroring the paper's choice
        of coarse grids plus interpolation.
        """
        batch_sizes, seq_lens = default_profile_grid(max_batch_size, max_seq_len)
        database = ProfileDatabase(
            model_name=self.config.name,
            tensor_parallel=self.tensor_parallel,
            device_name=self.device_spec.name,
        )
        database.profiles["encoder"] = self.profile_encoder_layer(batch_sizes, seq_lens)
        if self.config.is_encoder_decoder:
            coarse_batch = batch_sizes[::decoder_grid_stride] or batch_sizes
            coarse_seq = seq_lens[::decoder_grid_stride] or seq_lens
            if coarse_batch[-1] != batch_sizes[-1]:
                coarse_batch = coarse_batch + [batch_sizes[-1]]
            if coarse_seq[-1] != seq_lens[-1]:
                coarse_seq = coarse_seq + [seq_lens[-1]]
            database.profiles["decoder"] = self.profile_decoder_layer(
                coarse_batch, coarse_seq, coarse_seq
            )
        return database
