"""Profile database and cost-model (de)serialisation.

Profiling the simulated device is cheap, but the real system profiles
physical GPUs once and reuses the result across training runs; keeping the
same save/load workflow makes the cost model a drop-in component.  Profiles
are stored as JSON: the grid axes and the value arrays of every interpolator
for every layer kind and recomputation mode.

On top of the profile database, :func:`cost_model_to_dict` /
:func:`cost_model_from_dict` round-trip a whole :class:`CostModel` — model
configuration, parallel degrees, device spec and profile database — which is
what the process-based planner pool ships to its worker processes so each
worker rebuilds an identical planner without re-profiling.  All round-trips
are exact: interpolator grids survive both pickling and JSON (Python floats
serialise via ``repr``, which round-trips IEEE-754 doubles bit-exactly), so
a rebuilt cost model answers every query bit-identically.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

import numpy as np

from repro.cluster.device import DeviceSpec
from repro.costmodel.cost_model import CostModel
from repro.costmodel.interpolation import GridInterpolator
from repro.costmodel.profiler import LayerProfile, ProfileDatabase
from repro.model.config import ModelArch, ModelConfig
from repro.model.memory import RecomputeMode


def _interpolator_to_dict(interpolator: GridInterpolator) -> dict[str, Any]:
    return {
        "axes": [list(map(float, axis)) for axis in interpolator.axes],
        "values": interpolator.values.tolist(),
    }


def _interpolator_from_dict(payload: dict[str, Any]) -> GridInterpolator:
    return GridInterpolator(payload["axes"], np.asarray(payload["values"], dtype=float))


def profile_to_dict(profile: LayerProfile) -> dict[str, Any]:
    """Serialise one layer profile."""
    return {
        "kind": profile.kind,
        "dims": profile.dims,
        "forward_ms": _interpolator_to_dict(profile.forward_ms),
        "backward_ms": {
            mode.value: _interpolator_to_dict(interp) for mode, interp in profile.backward_ms.items()
        },
        "activation_bytes": {
            mode.value: _interpolator_to_dict(interp)
            for mode, interp in profile.activation_bytes.items()
        },
    }


def profile_from_dict(payload: dict[str, Any]) -> LayerProfile:
    """Rebuild one layer profile from :func:`profile_to_dict` output."""
    return LayerProfile(
        kind=str(payload["kind"]),
        dims=int(payload["dims"]),
        forward_ms=_interpolator_from_dict(payload["forward_ms"]),
        backward_ms={
            RecomputeMode(mode): _interpolator_from_dict(data)
            for mode, data in payload["backward_ms"].items()
        },
        activation_bytes={
            RecomputeMode(mode): _interpolator_from_dict(data)
            for mode, data in payload["activation_bytes"].items()
        },
    )


def database_to_dict(database: ProfileDatabase) -> dict[str, Any]:
    """Serialise a whole profile database."""
    return {
        "model_name": database.model_name,
        "tensor_parallel": database.tensor_parallel,
        "device_name": database.device_name,
        "profiles": {kind: profile_to_dict(profile) for kind, profile in database.profiles.items()},
    }


def database_from_dict(payload: dict[str, Any]) -> ProfileDatabase:
    """Rebuild a profile database from :func:`database_to_dict` output."""
    return ProfileDatabase(
        model_name=str(payload["model_name"]),
        tensor_parallel=int(payload["tensor_parallel"]),
        device_name=str(payload["device_name"]),
        profiles={
            kind: profile_from_dict(profile) for kind, profile in payload["profiles"].items()
        },
    )


def model_config_to_dict(config: ModelConfig) -> dict[str, Any]:
    """Serialise a :class:`ModelConfig` (architecture enum by value)."""
    payload = asdict(config)
    payload["arch"] = config.arch.value
    return payload


def model_config_from_dict(payload: dict[str, Any]) -> ModelConfig:
    """Rebuild a :class:`ModelConfig` from :func:`model_config_to_dict` output."""
    return ModelConfig(
        name=str(payload["name"]),
        arch=ModelArch(payload["arch"]),
        num_layers=int(payload["num_layers"]),
        hidden_size=int(payload["hidden_size"]),
        num_heads=int(payload["num_heads"]),
        kv_channels=int(payload["kv_channels"]),
        ffn_hidden_size=int(payload["ffn_hidden_size"]),
        vocab_size=int(payload["vocab_size"]),
    )


def device_spec_to_dict(spec: DeviceSpec) -> dict[str, Any]:
    """Serialise a :class:`DeviceSpec`."""
    return asdict(spec)


def device_spec_from_dict(payload: dict[str, Any]) -> DeviceSpec:
    """Rebuild a :class:`DeviceSpec` from :func:`device_spec_to_dict` output."""
    return DeviceSpec(
        name=str(payload["name"]),
        peak_flops=float(payload["peak_flops"]),
        memory_bandwidth=float(payload["memory_bandwidth"]),
        memory_capacity=float(payload["memory_capacity"]),
        compute_efficiency=float(payload["compute_efficiency"]),
        bandwidth_efficiency=float(payload["bandwidth_efficiency"]),
        kernel_overhead_ms=float(payload["kernel_overhead_ms"]),
    )


def cost_model_to_dict(cost_model: CostModel) -> dict[str, Any]:
    """Serialise everything needed to rebuild ``cost_model`` exactly.

    The payload embeds the full profile database, so
    :func:`cost_model_from_dict` never re-profiles and the rebuilt model is
    query-for-query bit-identical to the original.
    """
    return {
        "config": model_config_to_dict(cost_model.config),
        "num_stages": cost_model.num_stages,
        "tensor_parallel": cost_model.tensor_parallel,
        "zero_shards": cost_model.zero_shards,
        "device_spec": device_spec_to_dict(cost_model.device_spec),
        "database": database_to_dict(cost_model.database),
    }


def cost_model_from_dict(payload: dict[str, Any]) -> CostModel:
    """Rebuild a :class:`CostModel` from :func:`cost_model_to_dict` output."""
    return CostModel(
        config=model_config_from_dict(payload["config"]),
        num_stages=int(payload["num_stages"]),
        tensor_parallel=int(payload["tensor_parallel"]),
        zero_shards=int(payload["zero_shards"]),
        device_spec=device_spec_from_dict(payload["device_spec"]),
        database=database_from_dict(payload["database"]),
    )


def save_database(database: ProfileDatabase, path: str | Path) -> Path:
    """Write a profile database to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(database_to_dict(database)))
    return path


def load_database(path: str | Path) -> ProfileDatabase:
    """Load a profile database previously written by :func:`save_database`."""
    payload = json.loads(Path(path).read_text())
    return database_from_dict(payload)
