"""Profile database (de)serialisation.

Profiling the simulated device is cheap, but the real system profiles
physical GPUs once and reuses the result across training runs; keeping the
same save/load workflow makes the cost model a drop-in component.  Profiles
are stored as JSON: the grid axes and the value arrays of every interpolator
for every layer kind and recomputation mode.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.costmodel.interpolation import GridInterpolator
from repro.costmodel.profiler import LayerProfile, ProfileDatabase
from repro.model.memory import RecomputeMode


def _interpolator_to_dict(interpolator: GridInterpolator) -> dict[str, Any]:
    return {
        "axes": [list(map(float, axis)) for axis in interpolator.axes],
        "values": interpolator.values.tolist(),
    }


def _interpolator_from_dict(payload: dict[str, Any]) -> GridInterpolator:
    return GridInterpolator(payload["axes"], np.asarray(payload["values"], dtype=float))


def profile_to_dict(profile: LayerProfile) -> dict[str, Any]:
    """Serialise one layer profile."""
    return {
        "kind": profile.kind,
        "dims": profile.dims,
        "forward_ms": _interpolator_to_dict(profile.forward_ms),
        "backward_ms": {
            mode.value: _interpolator_to_dict(interp) for mode, interp in profile.backward_ms.items()
        },
        "activation_bytes": {
            mode.value: _interpolator_to_dict(interp)
            for mode, interp in profile.activation_bytes.items()
        },
    }


def profile_from_dict(payload: dict[str, Any]) -> LayerProfile:
    """Rebuild one layer profile from :func:`profile_to_dict` output."""
    return LayerProfile(
        kind=str(payload["kind"]),
        dims=int(payload["dims"]),
        forward_ms=_interpolator_from_dict(payload["forward_ms"]),
        backward_ms={
            RecomputeMode(mode): _interpolator_from_dict(data)
            for mode, data in payload["backward_ms"].items()
        },
        activation_bytes={
            RecomputeMode(mode): _interpolator_from_dict(data)
            for mode, data in payload["activation_bytes"].items()
        },
    )


def database_to_dict(database: ProfileDatabase) -> dict[str, Any]:
    """Serialise a whole profile database."""
    return {
        "model_name": database.model_name,
        "tensor_parallel": database.tensor_parallel,
        "device_name": database.device_name,
        "profiles": {kind: profile_to_dict(profile) for kind, profile in database.profiles.items()},
    }


def database_from_dict(payload: dict[str, Any]) -> ProfileDatabase:
    """Rebuild a profile database from :func:`database_to_dict` output."""
    return ProfileDatabase(
        model_name=str(payload["model_name"]),
        tensor_parallel=int(payload["tensor_parallel"]),
        device_name=str(payload["device_name"]),
        profiles={
            kind: profile_from_dict(profile) for kind, profile in payload["profiles"].items()
        },
    )


def save_database(database: ProfileDatabase, path: str | Path) -> Path:
    """Write a profile database to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(database_to_dict(database)))
    return path


def load_database(path: str | Path) -> ProfileDatabase:
    """Load a profile database previously written by :func:`save_database`."""
    payload = json.loads(Path(path).read_text())
    return database_from_dict(payload)
