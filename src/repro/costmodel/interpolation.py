"""Multi-linear interpolation over a rectangular grid of profiled points.

The paper profiles micro-batch sizes and sequence lengths at power-of-two
intervals and uses linear interpolation between sampled points.  This module
implements that interpolation for an arbitrary number of dimensions (two for
GPT layers, three for T5 decoder layers because cross-attention couples the
target and source lengths).

Values outside the profiled range are linearly extrapolated from the last
grid cell, matching the common practice of extending the profile rather than
failing; extrapolation quality is part of what the cost-model accuracy
experiment measures.

Two query paths are provided: the scalar ``__call__`` (the reference
implementation) and the batched :meth:`GridInterpolator.query_many`, which
evaluates thousands of points in a handful of numpy operations and is the
entry point of the planner's vectorized cost-model fast path.  Both paths
produce bit-identical results.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

import numpy as np


class GridInterpolator:
    """N-dimensional multi-linear interpolation on a rectangular grid.

    Args:
        axes: One strictly-increasing coordinate array per dimension.
        values: Array of shape ``tuple(len(a) for a in axes)`` holding the
            profiled value at each grid point.
    """

    def __init__(self, axes: Sequence[Sequence[float]], values: np.ndarray) -> None:
        if not axes:
            raise ValueError("at least one axis is required")
        self.axes = [np.asarray(axis, dtype=float) for axis in axes]
        for dim, axis in enumerate(self.axes):
            if axis.ndim != 1 or len(axis) < 1:
                raise ValueError(f"axis {dim} must be a non-empty 1-D sequence")
            if len(axis) > 1 and not np.all(np.diff(axis) > 0):
                raise ValueError(f"axis {dim} must be strictly increasing")
        self.values = np.asarray(values, dtype=float)
        expected_shape = tuple(len(axis) for axis in self.axes)
        if self.values.shape != expected_shape:
            raise ValueError(
                f"values shape {self.values.shape} does not match axes shape {expected_shape}"
            )

    def _bracket(self, dim: int, x: float) -> tuple[int, int, float]:
        """Return (low index, high index, fraction) bracketing ``x`` on ``dim``.

        Points beyond either end of the axis extrapolate from the outermost
        cell (fraction outside [0, 1]).
        """
        axis = self.axes[dim]
        if len(axis) == 1:
            return 0, 0, 0.0
        idx = bisect_left(axis, x)
        if idx <= 0:
            lo, hi = 0, 1
        elif idx >= len(axis):
            lo, hi = len(axis) - 2, len(axis) - 1
        else:
            lo, hi = idx - 1, idx
        span = axis[hi] - axis[lo]
        frac = (x - axis[lo]) / span if span else 0.0
        return lo, hi, float(frac)

    def __call__(self, *coords: float) -> float:
        """Interpolated value at ``coords`` (one coordinate per dimension)."""
        if len(coords) != len(self.axes):
            raise ValueError(
                f"expected {len(self.axes)} coordinates, got {len(coords)}"
            )
        brackets = [self._bracket(dim, float(c)) for dim, c in enumerate(coords)]
        total = 0.0
        corners = 1 << len(self.axes)
        for corner in range(corners):
            weight = 1.0
            index = []
            for dim, (lo, hi, frac) in enumerate(brackets):
                if corner >> dim & 1:
                    weight *= frac
                    index.append(hi)
                else:
                    weight *= 1.0 - frac
                    index.append(lo)
            if weight != 0.0:
                total += weight * float(self.values[tuple(index)])
        return total

    def _bracket_many(self, dim: int, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`_bracket`: arrays of (low, high, fraction)."""
        axis = self.axes[dim]
        if len(axis) == 1:
            zeros = np.zeros(len(x), dtype=np.intp)
            return zeros, zeros, np.zeros(len(x))
        idx = np.searchsorted(axis, x, side="left")
        np.clip(idx, 1, len(axis) - 1, out=idx)
        lo = idx - 1
        span = axis[idx] - axis[lo]
        frac = (x - axis[lo]) / span
        return lo, idx, frac

    def query_many(self, coords: np.ndarray) -> np.ndarray:
        """Interpolated values for a batch of points in one numpy pass.

        Args:
            coords: Array of shape ``(num_points, num_dims)``; one row per
                query point, one column per grid dimension.

        Returns:
            Array of ``num_points`` interpolated values, bit-identical to
            calling the scalar ``__call__`` on each row.
        """
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != len(self.axes):
            raise ValueError(
                f"expected coords of shape (n, {len(self.axes)}), got {coords.shape}"
            )
        brackets = [
            self._bracket_many(dim, coords[:, dim]) for dim in range(len(self.axes))
        ]
        total = np.zeros(coords.shape[0])
        corners = 1 << len(self.axes)
        for corner in range(corners):
            weight = np.ones(coords.shape[0])
            index = []
            for dim, (lo, hi, frac) in enumerate(brackets):
                if corner >> dim & 1:
                    weight = weight * frac
                    index.append(hi)
                else:
                    weight = weight * (1.0 - frac)
                    index.append(lo)
            total += weight * self.values[tuple(index)]
        return total

    def max_value(self) -> float:
        """Maximum profiled value (useful for sanity checks)."""
        return float(self.values.max())
