"""Profiled-and-interpolated cost models (paper §3 "Cost models").

The planner never queries the device model directly.  Instead, mirroring the
real system, per-layer execution time and activation memory are *profiled*
at power-of-two grid points of (micro-batch size, sequence length) — and
(micro-batch size, target length, source length) for T5 decoder layers —
and linearly interpolated in between.  This is precisely the fidelity gap
the paper quantifies in Fig. 18, and the same gap exists here between the
interpolated cost model and the discrete-event execution simulator.
"""

from repro.costmodel.cost_model import CostModel, StageCost
from repro.costmodel.interpolation import GridInterpolator
from repro.costmodel.profiler import (
    LayerProfile,
    LayerProfiler,
    ProfileDatabase,
    default_profile_grid,
)
from repro.costmodel.serialization import (
    cost_model_from_dict,
    cost_model_to_dict,
    load_database,
    save_database,
)

__all__ = [
    "CostModel",
    "StageCost",
    "GridInterpolator",
    "LayerProfile",
    "LayerProfiler",
    "ProfileDatabase",
    "default_profile_grid",
    "cost_model_to_dict",
    "cost_model_from_dict",
    "save_database",
    "load_database",
]
