"""Naive padding baseline.

Every sample in the mini-batch is padded to the mini-batch's longest
sequence and the samples are grouped into micro-batches of a fixed size in
sampling order.  On FLANv2-like mixtures this wastes more than 80% of the
processed tokens (paper §2.1), which is the motivation for packing and for
DynaPipe.
"""

from __future__ import annotations

from typing import Sequence

from repro.batching.base import BatchingResult, BatchingStrategy, MicroBatch
from repro.data.tasks import Sample


class NaivePaddingBatching(BatchingStrategy):
    """Pad every sample to the mini-batch maximum sequence length.

    Args:
        micro_batch_size: Number of samples per micro-batch.
        decoder_only: Whether sequences are concatenated (GPT) or kept as
            separate input/target sequences (T5).
    """

    name = "naive-padding"

    def __init__(self, micro_batch_size: int, decoder_only: bool = False) -> None:
        super().__init__(decoder_only=decoder_only)
        if micro_batch_size < 1:
            raise ValueError(f"micro_batch_size must be >= 1, got {micro_batch_size}")
        self.micro_batch_size = micro_batch_size

    def split(self, samples: Sequence[Sample]) -> BatchingResult:
        """Group samples in order; pad every micro-batch to the global max."""
        if not samples:
            return BatchingResult(micro_batches=[])
        if self.decoder_only:
            pad_enc = max(s.total_tokens for s in samples)
            pad_dec = None
        else:
            pad_enc = max(s.input_tokens for s in samples)
            pad_dec = max(s.target_tokens for s in samples)
        micro_batches = []
        for start in range(0, len(samples), self.micro_batch_size):
            chunk = samples[start : start + self.micro_batch_size]
            micro_batches.append(
                MicroBatch(
                    rows=[[s] for s in chunk],
                    decoder_only=self.decoder_only,
                    pad_enc_to=pad_enc,
                    pad_dec_to=pad_dec if not self.decoder_only else None,
                )
            )
        return BatchingResult(micro_batches=micro_batches)
