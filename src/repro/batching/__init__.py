"""Micro-batch construction strategies.

This package holds the *baseline* batching methods the paper compares
against (naive padding, packing, token-based and fixed-size micro-batching)
plus the shared :class:`~repro.batching.base.MicroBatch` representation and
padding-efficiency metrics.  DynaPipe's own dynamic-programming construction
lives in :mod:`repro.core.microbatch` because it is the paper's primary
contribution.
"""

from repro.batching.base import BatchingStrategy, MicroBatch
from repro.batching.fixed_size import FixedSizeBatching
from repro.batching.metrics import PaddingStats, padding_stats
from repro.batching.packing import PackingBatching
from repro.batching.padding import NaivePaddingBatching
from repro.batching.token_based import TokenBasedBatching

__all__ = [
    "MicroBatch",
    "BatchingStrategy",
    "NaivePaddingBatching",
    "PackingBatching",
    "TokenBasedBatching",
    "FixedSizeBatching",
    "PaddingStats",
    "padding_stats",
]
