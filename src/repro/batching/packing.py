"""Packing baseline (the MLM+DS dataloader behaviour).

Packing concatenates multiple short samples into a single row whose length
matches the configured maximum sequence length, greatly reducing padding
(paper §2.2).  The cost is that attention is computed across the full packed
row — a quadratic-in-length waste across unrelated samples — which is
exactly what the compute cost of the resulting micro-batch shape captures,
because its padded sequence length is always the packing target length.

The packer is a first-fit bin packer over rows: each sample goes into the
first open row where it still fits, a new row is opened when none fits, and
samples longer than the target length are truncated beforehand by the
dataloader (see :mod:`repro.data.truncation`).  For encoder-decoder models
the input and target sequences are packed jointly: a sample fits in a row
only if both its input and its target still fit their respective budgets.
"""

from __future__ import annotations

from typing import Sequence

from repro.batching.base import BatchingResult, BatchingStrategy, MicroBatch
from repro.data.tasks import Sample


class PackingBatching(BatchingStrategy):
    """First-fit packing into rows of the maximum sequence length.

    Args:
        max_seq_len: Target packed length for the input sequence (and, for
            decoder-only models, the concatenated sequence).
        micro_batch_size: Number of packed rows per micro-batch.
        decoder_only: Architecture switch.
        max_target_len: Target packed length for the target sequence
            (encoder-decoder models only; defaults to ``max_seq_len // 4``
            which matches the shorter decoder budget used in practice).
    """

    name = "packing"

    def __init__(
        self,
        max_seq_len: int,
        micro_batch_size: int,
        decoder_only: bool = False,
        max_target_len: int | None = None,
    ) -> None:
        super().__init__(decoder_only=decoder_only)
        if max_seq_len < 1:
            raise ValueError(f"max_seq_len must be >= 1, got {max_seq_len}")
        if micro_batch_size < 1:
            raise ValueError(f"micro_batch_size must be >= 1, got {micro_batch_size}")
        self.max_seq_len = max_seq_len
        self.micro_batch_size = micro_batch_size
        if decoder_only:
            self.max_target_len = 0
        else:
            self.max_target_len = max_target_len if max_target_len is not None else max(max_seq_len // 4, 1)

    def _sample_lengths(self, sample: Sample) -> tuple[int, int]:
        """(input budget use, target budget use) of one sample."""
        if self.decoder_only:
            return sample.total_tokens, 0
        return sample.input_tokens, sample.target_tokens

    def pack_rows(self, samples: Sequence[Sample]) -> tuple[list[list[Sample]], list[Sample]]:
        """First-fit pack samples into rows; returns (rows, dropped samples).

        A sample is dropped only if it cannot fit into an *empty* row, i.e.
        it exceeds the packing budget on its own (the dataloader should have
        truncated it; dropping keeps the packer total).
        """
        rows: list[list[Sample]] = []
        enc_room: list[int] = []
        dec_room: list[int] = []
        dropped: list[Sample] = []
        for sample in samples:
            enc_need, dec_need = self._sample_lengths(sample)
            if enc_need > self.max_seq_len or dec_need > max(self.max_target_len, 0):
                if enc_need > self.max_seq_len or (not self.decoder_only and dec_need > self.max_target_len):
                    dropped.append(sample)
                    continue
            placed = False
            for row_index in range(len(rows)):
                if enc_need <= enc_room[row_index] and dec_need <= dec_room[row_index]:
                    rows[row_index].append(sample)
                    enc_room[row_index] -= enc_need
                    dec_room[row_index] -= dec_need
                    placed = True
                    break
            if not placed:
                rows.append([sample])
                enc_room.append(self.max_seq_len - enc_need)
                dec_room.append((self.max_target_len if not self.decoder_only else 0) - dec_need)
        return rows, dropped

    def split(self, samples: Sequence[Sample]) -> BatchingResult:
        """Pack the mini-batch and group packed rows into micro-batches."""
        if not samples:
            return BatchingResult(micro_batches=[])
        rows, dropped = self.pack_rows(samples)
        micro_batches = []
        for start in range(0, len(rows), self.micro_batch_size):
            chunk = rows[start : start + self.micro_batch_size]
            micro_batches.append(
                MicroBatch(
                    rows=chunk,
                    decoder_only=self.decoder_only,
                    pad_enc_to=self.max_seq_len,
                    pad_dec_to=self.max_target_len if not self.decoder_only else None,
                )
            )
        return BatchingResult(micro_batches=micro_batches, dropped_samples=dropped)
