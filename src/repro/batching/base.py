"""Micro-batch representation shared by every batching strategy.

A micro-batch is a 2-D tensor of tokens: ``batch_size`` rows, each padded to
a common sequence length.  A *row* normally holds one sample; under packing
a row holds several concatenated samples.  Keeping the row structure lets
padding efficiency and compute cost be derived for every strategy from the
same object.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.data.tasks import Sample
from repro.model.transformer import MicroBatchShape


@dataclass
class MicroBatch:
    """A micro-batch as a collection of rows of samples.

    Attributes:
        rows: One entry per row of the batch tensor; each entry lists the
            samples concatenated into that row (length 1 except for packing).
        decoder_only: Whether the model consumes a single concatenated
            sequence (GPT) or separate input/target sequences (T5).
        pad_enc_to: Optional fixed padded length of the input sequence (used
            by packing, which always pads to the configured maximum).
        pad_dec_to: Optional fixed padded length of the target sequence.
    """

    rows: list[list[Sample]]
    decoder_only: bool = False
    pad_enc_to: int | None = None
    pad_dec_to: int | None = None

    @classmethod
    def from_samples(
        cls, samples: Iterable[Sample], decoder_only: bool = False
    ) -> "MicroBatch":
        """Build a micro-batch with one sample per row (no packing)."""
        rows = [[sample] for sample in samples]
        if not rows:
            raise ValueError("a micro-batch needs at least one sample")
        return cls(rows=rows, decoder_only=decoder_only)

    def __post_init__(self) -> None:
        if not self.rows or any(not row for row in self.rows):
            raise ValueError("micro-batch rows must be non-empty")

    # ------------------------------------------------------------------ sizes

    @property
    def batch_size(self) -> int:
        """Number of rows in the batch tensor."""
        return len(self.rows)

    @property
    def num_samples(self) -> int:
        """Number of real samples across all rows."""
        return sum(len(row) for row in self.rows)

    def samples(self) -> list[Sample]:
        """All samples in row order."""
        return [sample for row in self.rows for sample in row]

    def _row_enc_tokens(self, row: Sequence[Sample]) -> int:
        if self.decoder_only:
            return sum(s.total_tokens for s in row)
        return sum(s.input_tokens for s in row)

    def _row_dec_tokens(self, row: Sequence[Sample]) -> int:
        if self.decoder_only:
            return 0
        return sum(s.target_tokens for s in row)

    @property
    def enc_seq_len(self) -> int:
        """Padded input-sequence length of the batch tensor."""
        longest = max(self._row_enc_tokens(row) for row in self.rows)
        if self.pad_enc_to is not None:
            if self.pad_enc_to < longest:
                raise ValueError(
                    f"pad_enc_to={self.pad_enc_to} is shorter than the longest row ({longest})"
                )
            return self.pad_enc_to
        return longest

    @property
    def dec_seq_len(self) -> int:
        """Padded target-sequence length of the batch tensor (0 for GPT)."""
        longest = max(self._row_dec_tokens(row) for row in self.rows)
        if self.pad_dec_to is not None:
            if self.pad_dec_to < longest:
                raise ValueError(
                    f"pad_dec_to={self.pad_dec_to} is shorter than the longest row ({longest})"
                )
            return self.pad_dec_to
        return longest

    def shape(self) -> MicroBatchShape:
        """The padded tensor shape fed to the cost model / executor."""
        return MicroBatchShape(
            batch_size=self.batch_size,
            enc_seq_len=self.enc_seq_len,
            dec_seq_len=self.dec_seq_len,
        )

    # ------------------------------------------------------------------ token accounting

    def actual_tokens(self) -> int:
        """Non-padding tokens in the micro-batch."""
        return sum(s.total_tokens for s in self.samples())

    def padded_tokens(self) -> int:
        """Total tokens processed including padding."""
        return self.batch_size * (self.enc_seq_len + self.dec_seq_len)

    def actual_enc_tokens(self) -> int:
        """Non-padding tokens in the input (encoder) tensor."""
        return sum(self._row_enc_tokens(row) for row in self.rows)

    def actual_dec_tokens(self) -> int:
        """Non-padding tokens in the target (decoder) tensor."""
        return sum(self._row_dec_tokens(row) for row in self.rows)

    def padding_efficiency(self) -> float:
        """Fraction of processed tokens that are real (non-padding) tokens."""
        padded = self.padded_tokens()
        return self.actual_tokens() / padded if padded else 0.0


@dataclass
class BatchingResult:
    """Output of a batching strategy for one mini-batch.

    Attributes:
        micro_batches: The constructed micro-batches, in execution order.
        dropped_samples: Samples the strategy could not place (e.g. a sample
            longer than the packing target length after truncation failed).
    """

    micro_batches: list[MicroBatch]
    dropped_samples: list[Sample] = field(default_factory=list)

    def total_actual_tokens(self) -> int:
        """Non-padding tokens across all micro-batches."""
        return sum(mb.actual_tokens() for mb in self.micro_batches)

    def total_padded_tokens(self) -> int:
        """Total processed tokens (padding included) across micro-batches."""
        return sum(mb.padded_tokens() for mb in self.micro_batches)


class BatchingStrategy(abc.ABC):
    """Interface implemented by every micro-batch construction method."""

    #: Human readable name used in benchmark output.
    name: str = "base"

    def __init__(self, decoder_only: bool = False) -> None:
        self.decoder_only = decoder_only

    @abc.abstractmethod
    def split(self, samples: Sequence[Sample]) -> BatchingResult:
        """Split one mini-batch's samples into micro-batches."""

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}(decoder_only={self.decoder_only})"
