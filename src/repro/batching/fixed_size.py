"""Fixed micro-batch size baseline.

Every micro-batch holds exactly ``micro_batch_size`` samples (the last one
may be smaller), padded to the longest sample within the micro-batch.  This
is what existing pipeline systems do (paper §2.3, Fig. 5 right panels): the
micro-batch size must be grid searched, small sizes waste compute efficiency
and large sizes run out of memory at long maximum sequence lengths.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.batching.base import BatchingResult, BatchingStrategy, MicroBatch
from repro.batching.token_based import sort_by_length
from repro.data.tasks import Sample

OrderingFn = Callable[[Sequence[Sample]], list[Sample]]


class FixedSizeBatching(BatchingStrategy):
    """Group samples into micro-batches of a fixed sample count.

    Args:
        micro_batch_size: Samples per micro-batch.
        decoder_only: Architecture switch.
        ordering: Optional sample ordering before grouping (defaults to
            keeping the sampling order, which is what uniform micro-batching
            systems do; pass :func:`sort_by_length` to bucket by length).
    """

    name = "fixed-size"

    def __init__(
        self,
        micro_batch_size: int,
        decoder_only: bool = False,
        ordering: OrderingFn | None = None,
    ) -> None:
        super().__init__(decoder_only=decoder_only)
        if micro_batch_size < 1:
            raise ValueError(f"micro_batch_size must be >= 1, got {micro_batch_size}")
        self.micro_batch_size = micro_batch_size
        self.ordering = ordering

    def split(self, samples: Sequence[Sample]) -> BatchingResult:
        """Chunk samples into fixed-size groups."""
        if not samples:
            return BatchingResult(micro_batches=[])
        ordered = self.ordering(samples) if self.ordering else list(samples)
        micro_batches = []
        for start in range(0, len(ordered), self.micro_batch_size):
            chunk = ordered[start : start + self.micro_batch_size]
            micro_batches.append(
                MicroBatch.from_samples(chunk, decoder_only=self.decoder_only)
            )
        return BatchingResult(micro_batches=micro_batches)


# Re-exported for convenience so callers can do FixedSizeBatching(ordering=sort_by_length).
__all__ = ["FixedSizeBatching", "sort_by_length"]
