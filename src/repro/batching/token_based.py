"""Token-count based micro-batching (the "TB" baseline of Fig. 5 / 16a).

Samples are (optionally) sorted by sequence length, then consecutive samples
are accumulated into a micro-batch until its *padded* token count would
exceed the per-micro-batch token budget.  Larger sequence lengths therefore
get fewer samples per micro-batch, which already beats packing (paper §8.4)
but still requires searching for the right token budget and ignores memory
limits — the gaps DynaPipe's DP construction closes.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.batching.base import BatchingResult, BatchingStrategy, MicroBatch
from repro.data.tasks import Sample

OrderingFn = Callable[[Sequence[Sample]], list[Sample]]


def sort_by_length(samples: Sequence[Sample]) -> list[Sample]:
    """Default ordering: sort by input length, then target length."""
    return sorted(samples, key=lambda s: (s.input_tokens, s.target_tokens))


class TokenBasedBatching(BatchingStrategy):
    """Greedy accumulation up to a fixed padded-token budget per micro-batch.

    Args:
        tokens_per_micro_batch: Budget of padded tokens per micro-batch.
        decoder_only: Architecture switch.
        ordering: Callable producing the sample order to accumulate in
            (defaults to sorting by length; pass ``list`` to keep sampling
            order).
    """

    name = "token-based"

    def __init__(
        self,
        tokens_per_micro_batch: int,
        decoder_only: bool = False,
        ordering: OrderingFn = sort_by_length,
    ) -> None:
        super().__init__(decoder_only=decoder_only)
        if tokens_per_micro_batch < 1:
            raise ValueError(
                f"tokens_per_micro_batch must be >= 1, got {tokens_per_micro_batch}"
            )
        self.tokens_per_micro_batch = tokens_per_micro_batch
        self.ordering = ordering

    def _padded_tokens_if_added(self, current: list[Sample], candidate: Sample) -> int:
        """Padded token count of ``current + [candidate]`` as one micro-batch."""
        group = current + [candidate]
        if self.decoder_only:
            enc = max(s.total_tokens for s in group)
            dec = 0
        else:
            enc = max(s.input_tokens for s in group)
            dec = max(s.target_tokens for s in group)
        return len(group) * (enc + dec)

    def split(self, samples: Sequence[Sample]) -> BatchingResult:
        """Accumulate ordered samples into micro-batches under the budget."""
        if not samples:
            return BatchingResult(micro_batches=[])
        ordered = self.ordering(samples)
        micro_batches: list[MicroBatch] = []
        current: list[Sample] = []
        for sample in ordered:
            if current and self._padded_tokens_if_added(current, sample) > self.tokens_per_micro_batch:
                micro_batches.append(
                    MicroBatch.from_samples(current, decoder_only=self.decoder_only)
                )
                current = []
            current.append(sample)
        if current:
            micro_batches.append(
                MicroBatch.from_samples(current, decoder_only=self.decoder_only)
            )
        return BatchingResult(micro_batches=micro_batches)
