"""Padding-efficiency metrics (paper Fig. 4b, Fig. 15).

Padding efficiency is the fraction of processed tokens that are real
(non-padding) tokens.  For encoder-decoder models the paper reports the
encoder and decoder tensors separately because packing achieves high
efficiency on the encoder side but much lower on the decoder side, while
DynaPipe is balanced across the two.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Iterable

from repro.batching.base import MicroBatch


@dataclass(frozen=True)
class PaddingStats:
    """Token accounting for a set of micro-batches.

    Attributes:
        actual_tokens: Real tokens processed.
        padded_tokens: Total tokens processed including padding.
        encoder_efficiency: Non-padding fraction of the input tensors.
        decoder_efficiency: Non-padding fraction of the target tensors
            (``None`` for decoder-only models).
        overall_efficiency: Non-padding fraction over both tensors.
    """

    actual_tokens: int
    padded_tokens: int
    encoder_efficiency: float
    decoder_efficiency: float | None
    overall_efficiency: float

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PaddingStats":
        """Rebuild from :meth:`to_dict` output."""
        decoder = payload["decoder_efficiency"]
        return cls(
            actual_tokens=int(payload["actual_tokens"]),
            padded_tokens=int(payload["padded_tokens"]),
            encoder_efficiency=float(payload["encoder_efficiency"]),
            decoder_efficiency=None if decoder is None else float(decoder),
            overall_efficiency=float(payload["overall_efficiency"]),
        )


def padding_stats(micro_batches: Iterable[MicroBatch]) -> PaddingStats:
    """Compute padding statistics over ``micro_batches``.

    All micro-batches must target the same architecture: mixing decoder-only
    (concatenated-sequence) and encoder-decoder micro-batches is rejected
    because their tensors are not comparable — a decoder-only micro-batch has
    no target tensor, so folding it into the decoder-efficiency aggregation
    would silently misreport the encoder-decoder batches' efficiency, and its
    "encoder" tensor counts input *and* target tokens.

    Raises:
        ValueError: If ``micro_batches`` mixes ``decoder_only`` flags.
    """
    micro_batches = list(micro_batches)
    if not micro_batches:
        return PaddingStats(0, 0, 0.0, None, 0.0)
    flags = {mb.decoder_only for mb in micro_batches}
    if len(flags) > 1:
        raise ValueError(
            "cannot mix decoder-only and encoder-decoder micro-batches in one "
            "padding-efficiency computation; aggregate each model family separately"
        )
    decoder_only = flags.pop()
    actual = sum(mb.actual_tokens() for mb in micro_batches)
    padded = sum(mb.padded_tokens() for mb in micro_batches)

    enc_actual = sum(mb.actual_enc_tokens() for mb in micro_batches)
    enc_padded = sum(mb.batch_size * mb.enc_seq_len for mb in micro_batches)
    encoder_eff = enc_actual / enc_padded if enc_padded else 0.0

    if decoder_only:
        decoder_eff: float | None = None
    else:
        dec_actual = sum(mb.actual_dec_tokens() for mb in micro_batches)
        dec_padded = sum(mb.batch_size * mb.dec_seq_len for mb in micro_batches)
        decoder_eff = dec_actual / dec_padded if dec_padded else 0.0

    overall = actual / padded if padded else 0.0
    return PaddingStats(
        actual_tokens=actual,
        padded_tokens=padded,
        encoder_efficiency=encoder_eff,
        decoder_efficiency=decoder_eff,
        overall_efficiency=overall,
    )
