"""Compute-op level pipeline simulation.

Given a :class:`~repro.schedule.events.PipelineSchedule` and per-op
durations, the engine resolves the timing of every forward and backward pass
under the pipeline's data dependencies:

* an op must wait for the previous op on its own device (devices execute
  their schedule in order, one op at a time);
* a forward pass on stage ``j > 0`` must wait for the same micro-batch's
  forward on stage ``j - 1`` plus the activation transfer time;
* a backward pass on stage ``j < c-1`` must wait for the same micro-batch's
  backward on stage ``j + 1`` plus the gradient transfer time;
* the backward pass on the last stage follows its own forward pass.

The result contains the full timeline (used for safety-stock analysis and
communication planning), the makespan, per-device idle time and the peak
activation memory per device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.schedule.events import ComputeOp, OpType, PipelineSchedule
from repro.simulator.memory_tracker import MemoryTracker
from repro.simulator.trace import ExecutionTrace, TraceEvent

#: Duration provider: maps a compute op to milliseconds.
DurationFn = Callable[[ComputeOp], float]
#: Communication time provider: (microbatch, from_stage, to_stage, is_gradient) -> ms.
CommTimeFn = Callable[[int, int, int, bool], float]


class SimulationError(RuntimeError):
    """Raised when a schedule cannot be simulated (unsatisfiable dependencies)."""


@dataclass
class SimulationResult:
    """Output of :func:`simulate_schedule`.

    Attributes:
        op_times: Mapping from compute op to its (start, end) time in ms.
        makespan_ms: Completion time of the last op.
        device_busy_ms: Total compute time per device.
        device_idle_ms: Idle (bubble) time per device within the makespan.
        peak_activation_bytes: Peak activation memory per device (excludes
            static memory unless the caller passes it via the tracker).
        trace: Flat execution trace for rendering / export.
    """

    op_times: dict[ComputeOp, tuple[float, float]]
    makespan_ms: float
    device_busy_ms: list[float]
    device_idle_ms: list[float]
    peak_activation_bytes: list[float]
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)

    @property
    def bubble_fraction(self) -> float:
        """Average fraction of the makespan devices spend idle."""
        if self.makespan_ms <= 0 or not self.device_idle_ms:
            return 0.0
        return sum(self.device_idle_ms) / (len(self.device_idle_ms) * self.makespan_ms)


def _zero_comm_time(microbatch: int, src: int, dst: int, is_gradient: bool) -> float:
    return 0.0


def simulate_schedule(
    schedule: PipelineSchedule,
    duration_fn: DurationFn | Mapping[ComputeOp, float],
    comm_time_fn: CommTimeFn | None = None,
    activation_bytes: Sequence[Sequence[float]] | None = None,
    static_bytes: Sequence[float] | None = None,
) -> SimulationResult:
    """Simulate ``schedule`` and return its timeline.

    Args:
        schedule: The pipeline schedule to execute.
        duration_fn: Per-op durations, either as a callable or a mapping.
        comm_time_fn: Optional transfer time between adjacent stages;
            defaults to zero (communication fully overlapped / negligible).
        activation_bytes: Optional ``[microbatch][stage]`` activation sizes
            for memory accounting.
        static_bytes: Optional per-device static memory added to the tracker.

    Returns:
        A :class:`SimulationResult`.
    """
    if isinstance(duration_fn, Mapping):
        durations: Mapping[ComputeOp, float] = duration_fn
        duration = lambda op: durations[op]  # noqa: E731 - small adapter
    else:
        duration = duration_fn
    comm_time = comm_time_fn or _zero_comm_time

    num_stages = schedule.num_stages
    op_times: dict[ComputeOp, tuple[float, float]] = {}
    pointers = [0] * num_stages
    device_clock = [0.0] * num_stages
    trackers = [
        MemoryTracker(static_bytes=(static_bytes[j] if static_bytes else 0.0))
        for j in range(num_stages)
    ]
    trace = ExecutionTrace()

    def dependency_ready_time(op: ComputeOp) -> float | None:
        """Earliest time the cross-stage dependency of ``op`` is satisfied,
        or None if the dependency has not been simulated yet."""
        if op.op_type is OpType.FORWARD:
            if op.stage == 0:
                return 0.0
            dep = ComputeOp(op.microbatch, op.stage - 1, OpType.FORWARD)
            if dep not in op_times:
                return None
            return op_times[dep][1] + comm_time(op.microbatch, op.stage - 1, op.stage, False)
        if op.stage == num_stages - 1:
            dep = ComputeOp(op.microbatch, op.stage, OpType.FORWARD)
            if dep not in op_times:
                return None
            return op_times[dep][1]
        dep = ComputeOp(op.microbatch, op.stage + 1, OpType.BACKWARD)
        if dep not in op_times:
            return None
        return op_times[dep][1] + comm_time(op.microbatch, op.stage + 1, op.stage, True)

    total_ops = schedule.total_ops()
    scheduled = 0
    while scheduled < total_ops:
        progressed = False
        for stage in range(num_stages):
            stage_ops = schedule.stage(stage).ops
            while pointers[stage] < len(stage_ops):
                op = stage_ops[pointers[stage]]
                ready = dependency_ready_time(op)
                if ready is None:
                    break
                start = max(device_clock[stage], ready)
                end = start + max(duration(op), 0.0)
                op_times[op] = (start, end)
                device_clock[stage] = end
                pointers[stage] += 1
                scheduled += 1
                progressed = True
                if activation_bytes is not None:
                    if op.op_type is OpType.FORWARD:
                        trackers[stage].allocate(op.microbatch, activation_bytes[op.microbatch][stage])
                    else:
                        trackers[stage].free(op.microbatch)
                trace.add(
                    TraceEvent(
                        device=stage,
                        name=f"{op.op_type.value}{op.microbatch}",
                        start_ms=start,
                        end_ms=end,
                        category="compute",
                        microbatch=op.microbatch,
                    )
                )
        if not progressed:
            raise SimulationError(
                "simulation cannot make progress; the schedule violates pipeline "
                "dependencies (run validate_schedule for details)"
            )

    makespan = max((end for _, end in op_times.values()), default=0.0)
    busy = [
        sum(op_times[op][1] - op_times[op][0] for op in schedule.stage(j).ops)
        for j in range(num_stages)
    ]
    idle = [max(makespan - busy[j], 0.0) for j in range(num_stages)]
    peaks = [trackers[j].peak_bytes for j in range(num_stages)]
    return SimulationResult(
        op_times=op_times,
        makespan_ms=makespan,
        device_busy_ms=busy,
        device_idle_ms=idle,
        peak_activation_bytes=peaks,
        trace=trace,
    )
