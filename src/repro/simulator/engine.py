"""Compute-op level pipeline simulation.

Given a :class:`~repro.schedule.events.PipelineSchedule` and per-op
durations, the engine resolves the timing of every forward and backward pass
under the pipeline's data dependencies:

* an op must wait for the previous op on its own device (devices execute
  their schedule in order, one op at a time);
* a forward pass on stage ``j > 0`` must wait for the same micro-batch's
  forward on stage ``j - 1`` plus the activation transfer time;
* a backward pass on stage ``j < c-1`` must wait for the same micro-batch's
  backward on stage ``j + 1`` plus the gradient transfer time;
* the backward pass on the last stage follows its own forward pass.

Two engines implement this recurrence:

* the **vectorized** engine (default) compiles the schedule into a
  :class:`~repro.simulator.compiled.CompiledTimeline` — flat numpy arrays
  plus a precomputed dependency index — and solves it wave-by-wave in
  topological levels.  Compiled geometries are cached by schedule structure,
  so re-simulating the same geometry (order search, fleet iterations with
  unchanged plans) skips compilation entirely;
* the **scalar** engine is the original per-op Python event loop, kept as
  the bit-identity oracle.  Select it per call (``engine="scalar"``) or
  process-wide (``REPRO_SIM_ENGINE=scalar``).

The result contains the full timeline (used for safety-stock analysis and
communication planning), the makespan, per-device idle time and the peak
activation memory per device.  ``op_times`` and ``trace`` are materialized
lazily from the solver arrays on first access.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.obs.events import publish as _publish
from repro.schedule.events import ComputeOp, OpType, PipelineSchedule
from repro.simulator.compiled import (
    _STATS,
    CompiledTimeline,
    SimulationError,
    UnsupportedScheduleError,
    engine_stats,
    reset_engine_stats,
)
from repro.simulator.memory_tracker import MemoryTracker
from repro.simulator.trace import ExecutionTrace, TraceEvent

__all__ = [
    "CommTimeFn",
    "DurationFn",
    "SimulationError",
    "SimulationResult",
    "compile_schedule",
    "engine_stats",
    "reset_engine_stats",
    "simulate_schedule",
    "simulate_schedule_scalar",
]

#: Duration provider: maps a compute op to milliseconds.
DurationFn = Callable[[ComputeOp], float]
#: Communication time provider: (microbatch, from_stage, to_stage, is_gradient) -> ms.
CommTimeFn = Callable[[int, int, int, bool], float]

#: Environment variable selecting the default engine ("vector" or "scalar").
ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"


class SimulationResult:
    """Output of :func:`simulate_schedule`.

    Attributes:
        op_times: Mapping from compute op to its (start, end) time in ms.
        makespan_ms: Completion time of the last op.
        device_busy_ms: Total compute time per device.
        device_idle_ms: Idle (bubble) time per device within the makespan.
        peak_activation_bytes: Peak activation memory per device (excludes
            static memory unless the caller passes it via the tracker).
        trace: Flat execution trace for rendering / export.

    ``op_times`` and ``trace`` may be built lazily from the vectorized
    solver's arrays; all other attributes are always materialized.
    """

    def __init__(
        self,
        op_times: dict[ComputeOp, tuple[float, float]] | None = None,
        makespan_ms: float = 0.0,
        device_busy_ms: list[float] | None = None,
        device_idle_ms: list[float] | None = None,
        peak_activation_bytes: list[float] | None = None,
        trace: ExecutionTrace | None = None,
        materialize: Callable[[], tuple[dict[ComputeOp, tuple[float, float]], ExecutionTrace]]
        | None = None,
    ) -> None:
        self._op_times = op_times
        self._trace = trace
        self._materialize = materialize
        if materialize is None:
            if self._op_times is None:
                self._op_times = {}
            if self._trace is None:
                self._trace = ExecutionTrace()
        self.makespan_ms = makespan_ms
        self.device_busy_ms = device_busy_ms if device_busy_ms is not None else []
        self.device_idle_ms = device_idle_ms if device_idle_ms is not None else []
        self.peak_activation_bytes = (
            peak_activation_bytes if peak_activation_bytes is not None else []
        )

    def _fill(self) -> None:
        assert self._materialize is not None
        self._op_times, self._trace = self._materialize()
        self._materialize = None

    @property
    def op_times(self) -> dict[ComputeOp, tuple[float, float]]:
        if self._op_times is None:
            self._fill()
        return self._op_times

    @property
    def trace(self) -> ExecutionTrace:
        if self._trace is None:
            self._fill()
        return self._trace

    @property
    def bubble_fraction(self) -> float:
        """Average fraction of the makespan devices spend idle."""
        if self.makespan_ms <= 0 or not self.device_idle_ms:
            return 0.0
        return sum(self.device_idle_ms) / (len(self.device_idle_ms) * self.makespan_ms)


def _zero_comm_time(microbatch: int, src: int, dst: int, is_gradient: bool) -> float:
    return 0.0


# ---------------------------------------------------------------- geometry cache

_GEOMETRY_CACHE: OrderedDict[tuple, CompiledTimeline] = OrderedDict()
_GEOMETRY_CACHE_MAX = 128


def _structure_signature(schedule: PipelineSchedule) -> tuple:
    """Hashable key for the schedule's geometry (per-stage op sequences)."""
    parts = []
    for stage_schedule in schedule.stages:
        encoded = np.fromiter(
            (
                (op.microbatch << 1) | (op.op_type is OpType.FORWARD)
                for op in stage_schedule.ops
            ),
            dtype=np.int64,
            count=len(stage_schedule.ops),
        )
        parts.append(encoded.tobytes())
    return tuple(parts)


def compile_schedule(schedule: PipelineSchedule) -> CompiledTimeline:
    """Compile ``schedule`` into a :class:`CompiledTimeline`, with caching.

    Two cache layers avoid recompilation: the compiled timeline is attached
    to the schedule object itself (same-object re-simulation, e.g. repeated
    fleet iterations over one plan), and a process-wide LRU keyed by the
    schedule *structure* catches structurally identical schedules built
    fresh each iteration.
    """
    cached = getattr(schedule, "_compiled_timeline", None)
    if cached is not None:
        _STATS["geometry_cache_hits"] += 1
        return cached
    signature = _structure_signature(schedule)
    timeline = _GEOMETRY_CACHE.get(signature)
    if timeline is not None:
        _GEOMETRY_CACHE.move_to_end(signature)
        _STATS["geometry_cache_hits"] += 1
    else:
        timeline = CompiledTimeline.from_schedule(schedule)
        _GEOMETRY_CACHE[signature] = timeline
        while len(_GEOMETRY_CACHE) > _GEOMETRY_CACHE_MAX:
            _GEOMETRY_CACHE.popitem(last=False)
    schedule._compiled_timeline = timeline  # cheap same-object memoization
    return timeline


def clear_geometry_cache() -> None:
    """Drop all cached compiled geometries (used by tests)."""
    _GEOMETRY_CACHE.clear()


# ---------------------------------------------------------------- dispatcher


def simulate_schedule(
    schedule: PipelineSchedule,
    duration_fn: DurationFn | Mapping[ComputeOp, float],
    comm_time_fn: CommTimeFn | None = None,
    activation_bytes: Sequence[Sequence[float]] | None = None,
    static_bytes: Sequence[float] | None = None,
    engine: str | None = None,
) -> SimulationResult:
    """Simulate ``schedule`` and return its timeline.

    Args:
        schedule: The pipeline schedule to execute.
        duration_fn: Per-op durations, either as a callable or a mapping.
        comm_time_fn: Optional transfer time between adjacent stages;
            defaults to zero (communication fully overlapped / negligible).
        activation_bytes: Optional ``[microbatch][stage]`` activation sizes
            for memory accounting.
        static_bytes: Optional per-device static memory added to the tracker.
        engine: ``"vector"`` (default) or ``"scalar"``; overrides the
            ``REPRO_SIM_ENGINE`` environment variable.

    Returns:
        A :class:`SimulationResult`.
    """
    selected = engine or os.environ.get(ENGINE_ENV_VAR) or "vector"
    if selected == "scalar":
        return simulate_schedule_scalar(
            schedule, duration_fn, comm_time_fn, activation_bytes, static_bytes
        )
    if selected != "vector":
        raise ValueError(f"unknown simulation engine {selected!r}")
    try:
        timeline = compile_schedule(schedule)
    except UnsupportedScheduleError:
        # Degenerate schedules (duplicate ops) keep the scalar semantics.
        return simulate_schedule_scalar(
            schedule, duration_fn, comm_time_fn, activation_bytes, static_bytes
        )
    durations = timeline.durations_from(duration_fn, schedule)
    comm = timeline.comm_from(comm_time_fn) if comm_time_fn is not None else None
    solution = timeline.solve(durations, comm)
    makespan = solution.makespan_ms
    busy, idle = timeline.device_busy_idle(solution.starts, solution.ends, makespan)
    if activation_bytes is not None:
        peaks = timeline.peak_activation(activation_bytes, static_bytes)
    else:
        peaks = [
            (static_bytes[j] if static_bytes else 0.0) for j in range(schedule.num_stages)
        ]
    starts, ends = solution.starts, solution.ends

    def materialize() -> tuple[dict[ComputeOp, tuple[float, float]], ExecutionTrace]:
        op_times: dict[ComputeOp, tuple[float, float]] = {}
        trace = ExecutionTrace()
        for i, op in enumerate(schedule.all_ops()):
            start, end = float(starts[i]), float(ends[i])
            op_times[op] = (start, end)
            trace.add(
                TraceEvent(
                    device=op.stage,
                    name=f"{op.op_type.value}{op.microbatch}",
                    start_ms=start,
                    end_ms=end,
                    category="compute",
                    microbatch=op.microbatch,
                )
            )
        return op_times, trace

    _STATS["vector_simulations"] += 1
    _publish("simulation", engine="vector", num_stages=schedule.num_stages, makespan_ms=makespan)
    return SimulationResult(
        makespan_ms=makespan,
        device_busy_ms=busy,
        device_idle_ms=idle,
        peak_activation_bytes=peaks,
        materialize=materialize,
    )


# ---------------------------------------------------------------- scalar oracle


def _cross_stage_dependency(op: ComputeOp, num_stages: int) -> ComputeOp | None:
    """The op whose completion ``op`` waits for across stages (None for the
    pipeline entry: a forward pass on stage 0)."""
    if op.op_type is OpType.FORWARD:
        if op.stage == 0:
            return None
        return ComputeOp(op.microbatch, op.stage - 1, OpType.FORWARD)
    if op.stage == num_stages - 1:
        return ComputeOp(op.microbatch, op.stage, OpType.FORWARD)
    return ComputeOp(op.microbatch, op.stage + 1, OpType.BACKWARD)


def _no_progress_error(
    schedule: PipelineSchedule, pointers: list[int], num_stages: int
) -> SimulationError:
    """Build a diagnostic naming the first blocked op and its unmet dependency."""
    blocked = [
        schedule.stage(j).ops[pointers[j]]
        for j in range(num_stages)
        if pointers[j] < len(schedule.stage(j).ops)
    ]
    first = min(blocked, key=lambda op: op.stage)
    dependency = _cross_stage_dependency(first, num_stages)
    if dependency is None:  # pragma: no cover - entry ops are always runnable
        return SimulationError("simulation cannot make progress")
    if dependency in set(schedule.all_ops()):
        why = "cannot execute (circular or misordered schedule dependencies)"
    else:
        why = "never appears in the schedule"
    return SimulationError(
        f"simulation cannot make progress: {first} is blocked waiting for "
        f"{dependency}, which {why}"
    )


def simulate_schedule_scalar(
    schedule: PipelineSchedule,
    duration_fn: DurationFn | Mapping[ComputeOp, float],
    comm_time_fn: CommTimeFn | None = None,
    activation_bytes: Sequence[Sequence[float]] | None = None,
    static_bytes: Sequence[float] | None = None,
) -> SimulationResult:
    """Reference per-op event-loop engine (the vectorized engine's oracle)."""
    if isinstance(duration_fn, Mapping):
        durations: Mapping[ComputeOp, float] = duration_fn
        duration = lambda op: durations[op]  # noqa: E731 - small adapter
    else:
        duration = duration_fn
    comm_time = comm_time_fn or _zero_comm_time

    num_stages = schedule.num_stages
    op_times: dict[ComputeOp, tuple[float, float]] = {}
    pointers = [0] * num_stages
    device_clock = [0.0] * num_stages
    busy = [0.0] * num_stages
    trackers = [
        MemoryTracker(static_bytes=(static_bytes[j] if static_bytes else 0.0))
        for j in range(num_stages)
    ]
    trace = ExecutionTrace()

    def dependency_ready_time(op: ComputeOp) -> float | None:
        """Earliest time the cross-stage dependency of ``op`` is satisfied,
        or None if the dependency has not been simulated yet."""
        if op.op_type is OpType.FORWARD:
            if op.stage == 0:
                return 0.0
            dep = ComputeOp(op.microbatch, op.stage - 1, OpType.FORWARD)
            if dep not in op_times:
                return None
            return op_times[dep][1] + comm_time(op.microbatch, op.stage - 1, op.stage, False)
        if op.stage == num_stages - 1:
            dep = ComputeOp(op.microbatch, op.stage, OpType.FORWARD)
            if dep not in op_times:
                return None
            return op_times[dep][1]
        dep = ComputeOp(op.microbatch, op.stage + 1, OpType.BACKWARD)
        if dep not in op_times:
            return None
        return op_times[dep][1] + comm_time(op.microbatch, op.stage + 1, op.stage, True)

    total_ops = schedule.total_ops()
    scheduled = 0
    while scheduled < total_ops:
        progressed = False
        for stage in range(num_stages):
            stage_ops = schedule.stage(stage).ops
            while pointers[stage] < len(stage_ops):
                op = stage_ops[pointers[stage]]
                ready = dependency_ready_time(op)
                if ready is None:
                    break
                start = max(device_clock[stage], ready)
                end = start + max(duration(op), 0.0)
                op_times[op] = (start, end)
                device_clock[stage] = end
                busy[stage] += end - start
                pointers[stage] += 1
                scheduled += 1
                progressed = True
                if activation_bytes is not None:
                    if op.op_type is OpType.FORWARD:
                        trackers[stage].allocate(op.microbatch, activation_bytes[op.microbatch][stage])
                    else:
                        trackers[stage].free(op.microbatch)
                trace.add(
                    TraceEvent(
                        device=stage,
                        name=f"{op.op_type.value}{op.microbatch}",
                        start_ms=start,
                        end_ms=end,
                        category="compute",
                        microbatch=op.microbatch,
                    )
                )
        if not progressed:
            raise _no_progress_error(schedule, pointers, num_stages)

    makespan = max((end for _, end in op_times.values()), default=0.0)
    idle = [max(makespan - busy[j], 0.0) for j in range(num_stages)]
    peaks = [trackers[j].peak_bytes for j in range(num_stages)]
    _STATS["scalar_simulations"] += 1
    _publish("simulation", engine="scalar", num_stages=num_stages, makespan_ms=makespan)
    return SimulationResult(
        op_times=op_times,
        makespan_ms=makespan,
        device_busy_ms=busy,
        device_idle_ms=idle,
        peak_activation_bytes=peaks,
        trace=trace,
    )
