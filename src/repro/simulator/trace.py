"""Execution traces.

A trace is a flat list of timed events (compute ops and transfers) that can
be rendered as a text Gantt chart or exported as dictionaries for plotting.
Traces are produced by both simulation levels and consumed by examples and
by the safety-stock analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One timed event on a device.

    Attributes:
        device: Device (stage) index the event occupies.
        name: Short label, e.g. ``"F3"`` or ``"send-act-2"``.
        start_ms: Start time in milliseconds.
        end_ms: End time in milliseconds.
        category: ``"compute"`` or ``"comm"``.
        microbatch: Micro-batch index the event belongs to (if applicable).
    """

    device: int
    name: str
    start_ms: float
    end_ms: float
    category: str = "compute"
    microbatch: int | None = None

    @property
    def duration_ms(self) -> float:
        """Duration of the event."""
        return self.end_ms - self.start_ms


@dataclass
class ExecutionTrace:
    """A collection of trace events for one simulated iteration."""

    events: list[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        """Append one event."""
        self.events.append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Append many events."""
        self.events.extend(events)

    def makespan_ms(self) -> float:
        """End time of the latest event (0 for an empty trace)."""
        return max((event.end_ms for event in self.events), default=0.0)

    def device_events(self, device: int) -> list[TraceEvent]:
        """Events of one device sorted by start time."""
        return sorted(
            (event for event in self.events if event.device == device),
            key=lambda event: event.start_ms,
        )

    def device_busy_ms(self, device: int, category: str = "compute") -> float:
        """Total busy time of a device for a given event category."""
        return sum(
            event.duration_ms
            for event in self.events
            if event.device == device and event.category == category
        )

    def num_devices(self) -> int:
        """Number of distinct devices appearing in the trace."""
        return len({event.device for event in self.events})

    def to_dicts(self) -> list[dict]:
        """Export the trace as JSON-compatible dictionaries."""
        return [
            {
                "device": event.device,
                "name": event.name,
                "start_ms": event.start_ms,
                "end_ms": event.end_ms,
                "category": event.category,
                "microbatch": event.microbatch,
            }
            for event in self.events
        ]

    def render_gantt(self, width: int = 100, compute_only: bool = True) -> str:
        """Render a coarse text Gantt chart (one row per device).

        Intended for examples and debugging; each character cell covers
        ``makespan / width`` milliseconds and shows the micro-batch index of
        the op occupying it (``.`` for idle).
        """
        makespan = self.makespan_ms()
        if makespan <= 0:
            return "(empty trace)"
        devices = sorted({event.device for event in self.events})
        lines = []
        cell = makespan / width
        for device in devices:
            row = ["."] * width
            for event in self.device_events(device):
                if compute_only and event.category != "compute":
                    continue
                start_cell = int(event.start_ms / cell)
                end_cell = max(start_cell + 1, int(event.end_ms / cell))
                label = "?"
                if event.microbatch is not None:
                    label = str(event.microbatch % 10)
                if event.name.startswith("B"):
                    label = label.lower() if label.isalpha() else label
                for position in range(start_cell, min(end_cell, width)):
                    row[position] = label
            lines.append(f"dev{device:2d} |" + "".join(row) + "|")
        return "\n".join(lines)
