"""Per-device activation memory accounting.

Both simulation levels use the same tracker: a forward pass allocates the
micro-batch's activation footprint on the stage, the matching backward pass
frees it, and the tracker records the peak.  The peak (plus the stage's
static memory) is what is compared against device capacity to decide whether
a plan would OOM — the memory side of the paper's Fig. 18.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class MemoryAccountingError(RuntimeError):
    """Raised when frees do not match allocations (a planner/executor bug)."""


@dataclass
class MemoryTracker:
    """Tracks live activation allocations and their peak on one device.

    Attributes:
        capacity: Optional capacity in bytes; exceeding it is recorded (and
            optionally raises) rather than silently ignored.
        static_bytes: Constant memory always resident on the device.
    """

    capacity: float | None = None
    static_bytes: float = 0.0
    _live: dict[object, float] = field(default_factory=dict)
    _current: float = 0.0
    _peak: float = 0.0
    _over_capacity_events: int = 0

    def __post_init__(self) -> None:
        self._current = self.static_bytes
        self._peak = self.static_bytes

    def allocate(self, key: object, nbytes: float) -> None:
        """Allocate ``nbytes`` under ``key`` (e.g. a micro-batch index)."""
        if nbytes < 0:
            raise ValueError(f"allocation size must be >= 0, got {nbytes}")
        if key in self._live:
            raise MemoryAccountingError(f"allocation key {key!r} is already live")
        self._live[key] = nbytes
        self._current += nbytes
        self._peak = max(self._peak, self._current)
        if self.capacity is not None and self._current > self.capacity:
            self._over_capacity_events += 1

    def free(self, key: object) -> float:
        """Free the allocation under ``key``; returns its size."""
        if key not in self._live:
            raise MemoryAccountingError(f"freeing unknown allocation key {key!r}")
        nbytes = self._live.pop(key)
        self._current -= nbytes
        return nbytes

    @property
    def current_bytes(self) -> float:
        """Currently allocated bytes (including static memory)."""
        return self._current

    @property
    def peak_bytes(self) -> float:
        """Peak allocated bytes observed so far (including static memory)."""
        return self._peak

    @property
    def live_allocations(self) -> int:
        """Number of live (unfreed) allocations."""
        return len(self._live)

    @property
    def exceeded_capacity(self) -> bool:
        """Whether any allocation pushed usage above the capacity."""
        return self._over_capacity_events > 0
