"""Instruction-stream executor with NCCL-like communication semantics.

Each (virtual) device executes its instruction stream in order:

* ``ForwardPass`` / ``BackwardPass`` occupy the compute stream for the
  duration given by the caller's duration function;
* ``*Start`` communication instructions post a transfer onto the single
  communication channel shared with the peer device and return immediately
  (asynchronous launch on the communication stream);
* ``Wait*`` instructions block the compute stream until the corresponding
  transfer has completed.

The channel between each pair of adjacent devices processes transfers
strictly in the order they were posted by each side — the NCCL constraint
the paper describes in §2.3/§6.  If the two sides post mismatching heads
(device 1's next posted op is "send activation of micro-batch 1" while
device 2's next posted op is "send gradient of micro-batch 7"), neither
transfer can ever complete and the execution deadlocks.  The executor
detects this and raises :class:`CommunicationDeadlockError`, which is how
the reproduction demonstrates that naive communication ordering breaks
dynamic pipelines while DynaPipe's planned ordering does not.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.instructions.ops import (
    BackwardPass,
    CommDirection,
    ForwardPass,
    PipelineInstruction,
    RecvActStart,
    RecvGradStart,
    SendActStart,
    SendGradStart,
    WaitRecvAct,
    WaitRecvGrad,
    WaitSendAct,
    WaitSendGrad,
    _CommStart,
    _CommWait,
)
from repro.simulator.memory_tracker import MemoryTracker
from repro.simulator.trace import ExecutionTrace, TraceEvent

#: Duration provider for compute instructions, in milliseconds.
ComputeDurationFn = Callable[[PipelineInstruction], float]
#: Transfer time provider: (nbytes, src_stage, dst_stage) -> milliseconds.
TransferTimeFn = Callable[[float, int, int], float]

#: A transfer is identified by (sender, receiver, microbatch, direction).
TransferKey = tuple[int, int, int, CommDirection]


class CommunicationDeadlockError(RuntimeError):
    """Raised when the posted communication orders can never be matched.

    Attributes:
        blocked_devices: Devices whose streams could not run to completion.
        blocked_detail: One dictionary per blocked device describing the
            instruction it is stuck on (a ``Wait*`` op): ``device``, ``kind``
            (:class:`~repro.instructions.ops.InstructionKind` value),
            ``microbatch``, ``stage`` and ``peer``.  Execution backends other
            than the simulator raise the same type with the same fields, so
            differential harnesses can assert on *which* op hung.
    """

    def __init__(
        self,
        message: str,
        blocked_devices: list[int] | None = None,
        blocked_detail: list[dict] | None = None,
    ) -> None:
        super().__init__(message)
        self.blocked_devices = blocked_devices or []
        self.blocked_detail = blocked_detail or []


def blocked_instruction_detail(
    device: int, instr: PipelineInstruction
) -> dict:
    """The :attr:`CommunicationDeadlockError.blocked_detail` entry for a
    device stuck on ``instr`` (shared by the simulator and real backends)."""
    return {
        "device": device,
        "kind": instr.kind.value,
        "microbatch": instr.microbatch,
        "stage": instr.stage,
        "peer": getattr(instr, "peer", -1),
    }


def describe_blocked_detail(blocked_detail: list[dict]) -> str:
    """Human-readable summary of blocked instructions for error messages."""
    return "; ".join(
        f"device {d['device']} stuck on {d['kind']} "
        f"(microbatch={d['microbatch']}, stage={d['stage']}, peer={d['peer']})"
        for d in blocked_detail
    )


@dataclass
class ExecutionResult:
    """Output of :meth:`InstructionExecutor.run`.

    Attributes:
        makespan_ms: Completion time of the last instruction.
        device_finish_ms: Per-device completion time.
        device_compute_ms: Per-device total compute-stream busy time.
        peak_memory_bytes: Per-device peak (static + activation) memory.
        transfer_log: Completed transfers as (key, start, end) tuples.
        trace: Execution trace of compute and communication events.
    """

    makespan_ms: float
    device_finish_ms: list[float]
    device_compute_ms: list[float]
    peak_memory_bytes: list[float]
    transfer_log: list[tuple[TransferKey, float, float]]
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)

    @property
    def bubble_fraction(self) -> float:
        """Average idle fraction of the compute streams."""
        if self.makespan_ms <= 0:
            return 0.0
        idle = [
            max(self.makespan_ms - busy, 0.0) for busy in self.device_compute_ms
        ]
        return sum(idle) / (len(idle) * self.makespan_ms)


def _transfer_key_for_start(instr: _CommStart) -> TransferKey:
    """Canonical transfer key for a Start instruction."""
    if instr.is_send:
        return (instr.stage, instr.peer, instr.microbatch, instr.direction)
    return (instr.peer, instr.stage, instr.microbatch, instr.direction)


def _transfer_key_for_wait(instr: _CommWait) -> TransferKey:
    """Canonical transfer key for a Wait instruction."""
    if isinstance(instr, (WaitSendAct, WaitSendGrad)):
        direction = (
            CommDirection.ACTIVATION if isinstance(instr, WaitSendAct) else CommDirection.GRADIENT
        )
        return (instr.stage, instr.peer, instr.microbatch, direction)
    direction = (
        CommDirection.ACTIVATION if isinstance(instr, WaitRecvAct) else CommDirection.GRADIENT
    )
    return (instr.peer, instr.stage, instr.microbatch, direction)


@dataclass
class _PostedOp:
    """A communication op posted to a channel by one device."""

    key: TransferKey
    is_send: bool
    post_time: float
    nbytes: float


class InstructionExecutor:
    """Executes per-device instruction streams against simulated devices.

    Args:
        compute_duration_fn: Maps Forward/Backward instructions to ms.
        transfer_time_fn: Maps (nbytes, src, dst) to transfer ms.
        activation_bytes_fn: Maps Forward/Backward instructions to the
            activation bytes they allocate/free on their stage; optional.
        static_bytes: Per-device static memory for the trackers.
        device_capacity: Optional per-device capacity; exceeding it is
            recorded in the memory trackers (not fatal, matching how the
            planner treats predicted OOM as a constraint rather than the
            executor crashing).
    """

    def __init__(
        self,
        compute_duration_fn: ComputeDurationFn,
        transfer_time_fn: TransferTimeFn | None = None,
        activation_bytes_fn: Callable[[PipelineInstruction], float] | None = None,
        static_bytes: Sequence[float] | None = None,
        device_capacity: float | None = None,
    ) -> None:
        self.compute_duration_fn = compute_duration_fn
        self.transfer_time_fn = transfer_time_fn or (lambda nbytes, src, dst: 0.0)
        self.activation_bytes_fn = activation_bytes_fn
        self.static_bytes = static_bytes
        self.device_capacity = device_capacity

    def run(self, device_instructions: Sequence[Sequence[PipelineInstruction]]) -> ExecutionResult:
        """Execute the instruction streams of all devices.

        Raises:
            CommunicationDeadlockError: If the communication orders posted by
                adjacent devices can never be matched, or every device is
                blocked on a transfer that will never be posted.
        """
        num_devices = len(device_instructions)
        pointers = [0] * num_devices
        clocks = [0.0] * num_devices
        compute_busy = [0.0] * num_devices
        trackers = [
            MemoryTracker(
                capacity=self.device_capacity,
                static_bytes=(self.static_bytes[d] if self.static_bytes else 0.0),
            )
            for d in range(num_devices)
        ]
        trace = ExecutionTrace()

        # Channel state: per unordered device pair, a FIFO of posted ops per side.
        posted: dict[tuple[int, int], dict[int, deque[_PostedOp]]] = {}
        channel_free: dict[tuple[int, int], float] = {}
        completed: dict[TransferKey, tuple[float, float]] = {}
        transfer_log: list[tuple[TransferKey, float, float]] = []

        def pair_of(a: int, b: int) -> tuple[int, int]:
            return (a, b) if a < b else (b, a)

        def post(device: int, instr: _CommStart) -> None:
            key = _transfer_key_for_start(instr)
            pair = pair_of(instr.stage, instr.peer)
            queues = posted.setdefault(pair, {pair[0]: deque(), pair[1]: deque()})
            queues[device].append(
                _PostedOp(key=key, is_send=instr.is_send, post_time=clocks[device], nbytes=instr.nbytes)
            )

        def try_match_channels() -> bool:
            """Complete transfers whose heads match on both sides."""
            progressed = False
            for pair, queues in posted.items():
                a, b = pair
                while queues[a] and queues[b]:
                    head_a, head_b = queues[a][0], queues[b][0]
                    if head_a.key == head_b.key and head_a.is_send != head_b.is_send:
                        start = max(
                            head_a.post_time, head_b.post_time, channel_free.get(pair, 0.0)
                        )
                        nbytes = max(head_a.nbytes, head_b.nbytes)
                        sender, receiver = head_a.key[0], head_a.key[1]
                        end = start + max(self.transfer_time_fn(nbytes, sender, receiver), 0.0)
                        completed[head_a.key] = (start, end)
                        transfer_log.append((head_a.key, start, end))
                        channel_free[pair] = end
                        direction = "act" if head_a.key[3] is CommDirection.ACTIVATION else "grad"
                        trace.add(
                            TraceEvent(
                                device=sender,
                                name=f"send-{direction}-{head_a.key[2]}",
                                start_ms=start,
                                end_ms=end,
                                category="comm",
                                microbatch=head_a.key[2],
                            )
                        )
                        queues[a].popleft()
                        queues[b].popleft()
                        progressed = True
                    else:
                        break
            return progressed

        def head_mismatch_pairs() -> list[tuple[int, int]]:
            """Pairs whose heads are both posted but can never match."""
            mismatched = []
            for pair, queues in posted.items():
                a, b = pair
                if queues[a] and queues[b]:
                    head_a, head_b = queues[a][0], queues[b][0]
                    if not (head_a.key == head_b.key and head_a.is_send != head_b.is_send):
                        mismatched.append(pair)
            return mismatched

        total_instructions = sum(len(stream) for stream in device_instructions)
        executed = 0

        while executed < total_instructions:
            progressed = False
            for device in range(num_devices):
                stream = device_instructions[device]
                while pointers[device] < len(stream):
                    instr = stream[pointers[device]]
                    if isinstance(instr, (ForwardPass, BackwardPass)):
                        duration = max(self.compute_duration_fn(instr), 0.0)
                        start = clocks[device]
                        end = start + duration
                        clocks[device] = end
                        compute_busy[device] += duration
                        if self.activation_bytes_fn is not None:
                            nbytes = self.activation_bytes_fn(instr)
                            if isinstance(instr, ForwardPass):
                                trackers[device].allocate(("act", instr.microbatch), nbytes)
                            else:
                                trackers[device].free(("act", instr.microbatch))
                        label = "F" if isinstance(instr, ForwardPass) else "B"
                        trace.add(
                            TraceEvent(
                                device=device,
                                name=f"{label}{instr.microbatch}",
                                start_ms=start,
                                end_ms=end,
                                category="compute",
                                microbatch=instr.microbatch,
                            )
                        )
                        pointers[device] += 1
                        executed += 1
                        progressed = True
                    elif isinstance(instr, _CommStart):
                        post(device, instr)
                        pointers[device] += 1
                        executed += 1
                        progressed = True
                    elif isinstance(instr, _CommWait):
                        key = _transfer_key_for_wait(instr)
                        if key in completed:
                            clocks[device] = max(clocks[device], completed[key][1])
                            pointers[device] += 1
                            executed += 1
                            progressed = True
                        else:
                            break  # device blocked on an incomplete transfer
                    else:  # pragma: no cover - defensive
                        raise TypeError(f"unknown instruction type {type(instr).__name__}")
            if try_match_channels():
                progressed = True
            if not progressed:
                mismatched = head_mismatch_pairs()
                blocked = [d for d in range(num_devices) if pointers[d] < len(device_instructions[d])]
                # A blocked device always sits on a Wait (everything else
                # executes eagerly), so the head of its remaining stream is
                # the op that hung.
                blocked_detail = [
                    blocked_instruction_detail(d, device_instructions[d][pointers[d]])
                    for d in blocked
                ]
                blocked_summary = describe_blocked_detail(blocked_detail)
                if mismatched:
                    detail = ", ".join(f"devices {a}<->{b}" for a, b in mismatched)
                    raise CommunicationDeadlockError(
                        f"communication order mismatch on channel(s): {detail}; "
                        "the posted send/receive orders of the two sides can never "
                        f"match: {blocked_summary}",
                        blocked_devices=blocked,
                        blocked_detail=blocked_detail,
                    )
                raise CommunicationDeadlockError(
                    "execution stalled: devices are waiting on transfers whose peer "
                    "operation is never posted (missing or mis-ordered Start ops): "
                    f"{blocked_summary}",
                    blocked_devices=blocked,
                    blocked_detail=blocked_detail,
                )

        makespan = max(clocks) if clocks else 0.0
        return ExecutionResult(
            makespan_ms=makespan,
            device_finish_ms=list(clocks),
            device_compute_ms=compute_busy,
            peak_memory_bytes=[tracker.peak_bytes for tracker in trackers],
            transfer_log=transfer_log,
            trace=trace,
        )
