"""Incremental re-simulation for the injection-order search.

The planner's order search scores dozens of injection-order permutations of
the *same* micro-batches.  The legacy path rebuilt the full cyclic schedule
(ComputeOp objects) and re-ran the whole simulation per permutation.  This
module exploits two observations:

* **Slot relabeling.** Cyclic scheduling decisions depend only on the
  activation *values* presented, so scheduling micro-batches in injection
  order ``P`` is isomorphic to scheduling *slots* ``0..M-1`` in identity
  order over the permuted activation rows ``A[P]`` — slot ``k`` stands for
  micro-batch ``P[k]``.  Each permutation therefore only needs the lean
  slot-level scheduler (:func:`~repro.schedule.cyclic.cyclic_stage_sequences`)
  plus array gathers to map slot-indexed geometry onto real micro-batch
  durations, comm times and activations.

* **Geometry reuse.** With ample memory every permutation produces the same
  slot structure, so the expensive part — compiling the dependency DAG into
  a :class:`~repro.simulator.compiled.CompiledTimeline` — happens once and
  each permutation is a pure array re-solve.  Memory-gated schedules can
  fork into a handful of distinct structures; each is compiled at most once
  (keyed by the encoded slot sequences).

The produced scores are bit-identical to the legacy build-and-simulate path:
the same scheduler core emits the op order, and the compiled solver performs
the same float operations in the same order as the scalar engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.schedule.cyclic import ScheduleDeadlockError, cyclic_stage_sequences
from repro.simulator.compiled import COMM_ACT, COMM_GRAD, CompiledTimeline


@dataclass
class _Geometry:
    """One compiled slot structure plus precomputed gather indices."""

    timeline: CompiledTimeline
    act_edges: np.ndarray  # op ids whose dependency edge carries activations
    grad_edges: np.ndarray  # op ids whose dependency edge carries gradients


class IncrementalOrderSimulator:
    """Scores injection orders against compiled schedule geometry.

    All inputs are indexed by *micro-batch id* and pipeline stage:

    Args:
        num_stages: Number of pipeline stages ``C``.
        activation_bytes: ``(M, C)`` activation footprint matrix.
        forward_ms / backward_ms: ``(M, C)`` per-op duration matrices.
        act_comm_ms: ``(M, C)`` activation transfer times; entry ``[i, j]``
            is the cost of sending micro-batch ``i``'s activations from
            stage ``j`` to ``j + 1`` (column ``C - 1`` unused).
        grad_comm_ms: ``(M, C)`` gradient transfer times; entry ``[i, j]``
            is the cost of sending micro-batch ``i``'s gradients from stage
            ``j`` to ``j - 1`` (column ``0`` unused).
        memory_limits: Optional per-stage limits for memory-aware scheduling.
        static_bytes: Optional per-stage static memory.
        device_memory_bytes: Optional per-device capacity; permutations whose
            peak memory exceeds it score ``inf`` (infeasible), matching the
            planner's feasibility rule.
    """

    def __init__(
        self,
        num_stages: int,
        activation_bytes: np.ndarray,
        forward_ms: np.ndarray,
        backward_ms: np.ndarray,
        act_comm_ms: np.ndarray,
        grad_comm_ms: np.ndarray,
        memory_limits: Sequence[float] | None = None,
        static_bytes: Sequence[float] | None = None,
        device_memory_bytes: float | None = None,
    ) -> None:
        self.num_stages = num_stages
        self.activation_bytes = np.asarray(activation_bytes, dtype=np.float64)
        self.forward_ms = np.asarray(forward_ms, dtype=np.float64)
        self.backward_ms = np.asarray(backward_ms, dtype=np.float64)
        self.act_comm_ms = np.asarray(act_comm_ms, dtype=np.float64)
        self.grad_comm_ms = np.asarray(grad_comm_ms, dtype=np.float64)
        self.memory_limits = list(memory_limits) if memory_limits is not None else None
        self.static_bytes = list(static_bytes) if static_bytes is not None else None
        self.device_memory_bytes = device_memory_bytes
        self._geometries: dict[tuple, _Geometry] = {}
        #: Number of distinct slot structures compiled so far.
        self.compiles = 0
        #: Number of timeline solves (one per scored permutation).
        self.solves = 0

    def _geometry_for(self, sequences: list[list[int]]) -> _Geometry:
        key = tuple(np.asarray(seq, dtype=np.int64).tobytes() for seq in sequences)
        geometry = self._geometries.get(key)
        if geometry is None:
            timeline = CompiledTimeline.from_stage_sequences(self.num_stages, sequences)
            geometry = _Geometry(
                timeline=timeline,
                act_edges=np.flatnonzero(timeline.comm_kind == COMM_ACT),
                grad_edges=np.flatnonzero(timeline.comm_kind == COMM_GRAD),
            )
            self._geometries[key] = geometry
            self.compiles += 1
        return geometry

    def score(self, order: Sequence[int]) -> float:
        """Makespan of ``order`` (``inf`` when infeasible or deadlocked).

        Bit-identical to building the cyclic schedule with
        ``injection_order=order`` and running the simulation engine on it.
        """
        permutation = np.asarray(order, dtype=np.int64)
        permuted_activation = self.activation_bytes[permutation]
        try:
            sequences = cyclic_stage_sequences(
                self.num_stages, permuted_activation, self.memory_limits
            )
        except ScheduleDeadlockError:
            return float("inf")
        geometry = self._geometry_for(sequences)
        timeline = geometry.timeline

        # Map slot-indexed geometry onto real micro-batch ids.
        microbatch = permutation[timeline.op_microbatch]
        stage = timeline.op_stage
        durations = np.where(
            timeline.op_is_forward,
            self.forward_ms[microbatch, stage],
            self.backward_ms[microbatch, stage],
        )
        comm = np.zeros(timeline.num_ops, dtype=np.float64)
        act_edges, grad_edges = geometry.act_edges, geometry.grad_edges
        comm[act_edges] = self.act_comm_ms[microbatch[act_edges], stage[act_edges] - 1]
        comm[grad_edges] = self.grad_comm_ms[microbatch[grad_edges], stage[grad_edges] + 1]

        solution = timeline.solve(durations, comm)
        self.solves += 1

        if self.device_memory_bytes is not None:
            peaks = timeline.peak_activation(permuted_activation, self.static_bytes)
            if any(peak > self.device_memory_bytes * (1.0 + 1e-9) for peak in peaks):
                return float("inf")
        return solution.makespan_ms
