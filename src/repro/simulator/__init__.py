"""Discrete-event simulation of pipeline execution.

Two levels of fidelity are provided:

* :mod:`repro.simulator.engine` simulates a *compute-op schedule* (the
  output of 1F1B / adaptive scheduling) against per-op durations and
  cross-stage dependencies, producing a timeline, makespan, bubble (idle)
  time and peak activation memory.  This is the fast path used inside the
  planner (e.g. to score micro-batch injection orders) and by the schedule
  robustness experiments (Fig. 7).

* :mod:`repro.simulator.executor` interprets full *instruction streams*
  (compute + communication Start/Wait ops) with NCCL-like single-channel
  semantics per device pair.  It faithfully reproduces the deadlocks that
  naive communication ordering causes in dynamic pipelines (§6) and is used
  to validate DynaPipe's communication plans and to "run" training
  iterations with execution-time noise.
"""

from repro.simulator.compiled import CompiledTimeline, SimulationError
from repro.simulator.engine import (
    SimulationResult,
    compile_schedule,
    engine_stats,
    reset_engine_stats,
    simulate_schedule,
    simulate_schedule_scalar,
)
from repro.simulator.executor import (
    CommunicationDeadlockError,
    ExecutionResult,
    InstructionExecutor,
)
from repro.simulator.incremental import IncrementalOrderSimulator
from repro.simulator.memory_tracker import MemoryTracker
from repro.simulator.trace import ExecutionTrace, TraceEvent

__all__ = [
    "simulate_schedule",
    "simulate_schedule_scalar",
    "compile_schedule",
    "engine_stats",
    "reset_engine_stats",
    "CompiledTimeline",
    "IncrementalOrderSimulator",
    "SimulationError",
    "SimulationResult",
    "InstructionExecutor",
    "ExecutionResult",
    "CommunicationDeadlockError",
    "MemoryTracker",
    "ExecutionTrace",
    "TraceEvent",
]
