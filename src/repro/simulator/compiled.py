"""Data-oriented (compiled) timeline representation of a pipeline schedule.

The scalar engine in :mod:`repro.simulator.engine` resolves op timing with a
per-op Python event loop.  This module compiles a schedule's *geometry* —
which op runs where, and what it depends on — into flat numpy arrays once,
and then solves the timing recurrence wave-by-wave in topological levels:

* ``op_stage`` / ``op_microbatch`` / ``op_is_forward`` describe every op in
  stage-major order (op id = position within the concatenated per-stage
  sequences);
* ``dep`` holds each op's cross-stage dependency (the upstream forward, the
  downstream backward, or the same-stage forward for the last stage's
  backward) as an op id, ``-1`` when the op has none;
* ``prev`` holds the same-device predecessor (devices execute their schedule
  in order, one op at a time);
* ops are grouped into *waves* (topological levels of the dependency DAG).
  All ops in one wave are independent, so each wave is solved with a handful
  of vectorized array operations instead of per-op Python dispatch.

Compilation is schedule-order only: durations and communication times are
*inputs to the solve*, so one compiled geometry can be re-solved for many
duration vectors (``solve_batch``) or for permuted micro-batch orders
(:mod:`repro.simulator.incremental`).  The arithmetic performed per op is
bit-identical to the scalar engine's (same operand order, same ``max``
structure), which the equivalence test-suite pins.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.obs.registry import REGISTRY
from repro.schedule.events import OpType, PipelineSchedule
from repro.simulator.memory_tracker import MemoryAccountingError

#: Communication kind of an op's dependency edge (see ``comm_kind``).
COMM_NONE, COMM_ACT, COMM_GRAD = 0, 1, 2


class SimulationError(RuntimeError):
    """Raised when a schedule cannot be simulated (unsatisfiable dependencies)."""


class UnsupportedScheduleError(RuntimeError):
    """Internal: the schedule cannot be compiled (e.g. duplicate ops); the
    dispatcher falls back to the scalar engine instead of failing."""


# --------------------------------------------------------------------------- stats

#: Hot-path counters, registered with (and snapshotted by) the process-wide
#: metrics registry as ``sim_engine.*`` while keeping the zero-overhead
#: plain-dict increment idiom on the solve paths.
_STATS = REGISTRY.counter_dict(
    "sim_engine",
    (
        "geometry_compiles",
        "geometry_cache_hits",
        "timeline_solves",
        "vector_simulations",
        "scalar_simulations",
    ),
)


def engine_stats() -> dict[str, int]:
    """Snapshot of the engine's counters (compiles, cache hits, solves).

    The counters make reuse observable: a workload that re-simulates the same
    schedule geometry (the order search, fleet iterations with unchanged
    plans) should grow ``timeline_solves`` much faster than
    ``geometry_compiles``.

    This is a *process-local* shim over ``repro.obs.REGISTRY``'s
    ``sim_engine.*`` counters; planning that ran in pool worker processes is
    invisible here — use :meth:`repro.runtime.planner_pool.PlannerPool.engine_stats`
    for the aggregated fleet-wide view.
    """
    return dict(_STATS)


def reset_engine_stats() -> None:
    """Reset all engine counters to zero (used by tests and benchmarks)."""
    for key in _STATS:
        _STATS[key] = 0


def _op_name(microbatch: int, stage: int, is_forward: bool) -> str:
    return f"{'F' if is_forward else 'B'}{microbatch}@{stage}"


@dataclass
class TimelineSolution:
    """Start/end times of every op of one solve, in op-id (stage-major) order."""

    starts: np.ndarray
    ends: np.ndarray
    makespan_ms: float


class CompiledTimeline:
    """Array representation of one schedule geometry, solvable many times.

    Build with :meth:`from_schedule` or :meth:`from_stage_sequences`; both
    raise :class:`SimulationError` when the schedule's dependencies are
    unsatisfiable (naming the first blocked op and its unmet dependency).
    """

    def __init__(
        self,
        num_stages: int,
        op_stage: np.ndarray,
        op_microbatch: np.ndarray,
        op_is_forward: np.ndarray,
        stage_offsets: np.ndarray,
    ) -> None:
        self.num_stages = num_stages
        self.num_ops = int(op_stage.shape[0])
        self.op_stage = op_stage
        self.op_microbatch = op_microbatch
        self.op_is_forward = op_is_forward
        self.stage_offsets = stage_offsets
        self.num_microbatches = int(op_microbatch.max()) + 1 if self.num_ops else 0
        self._build_dependencies()
        self._build_waves()
        self._memory_order_checked = False
        _STATS["geometry_compiles"] += 1

    # ------------------------------------------------------------------ construction

    @classmethod
    def from_schedule(cls, schedule: PipelineSchedule) -> "CompiledTimeline":
        """Compile a :class:`~repro.schedule.events.PipelineSchedule`."""
        num_stages = schedule.num_stages
        stages_mb: list[list[int]] = []
        stages_fwd: list[list[bool]] = []
        for stage_schedule in schedule.stages:
            stages_mb.append([op.microbatch for op in stage_schedule.ops])
            stages_fwd.append([op.op_type is OpType.FORWARD for op in stage_schedule.ops])
        return cls._from_columns(num_stages, stages_mb, stages_fwd)

    @classmethod
    def from_stage_sequences(
        cls, num_stages: int, sequences: Sequence[Sequence[int]]
    ) -> "CompiledTimeline":
        """Compile from encoded per-stage sequences (``mb << 1 | is_forward``),
        the format produced by
        :func:`repro.schedule.cyclic.cyclic_stage_sequences`."""
        stages_mb = [[enc >> 1 for enc in seq] for seq in sequences]
        stages_fwd = [[bool(enc & 1) for enc in seq] for seq in sequences]
        return cls._from_columns(num_stages, stages_mb, stages_fwd)

    @classmethod
    def _from_columns(
        cls,
        num_stages: int,
        stages_mb: Sequence[Sequence[int]],
        stages_fwd: Sequence[Sequence[bool]],
    ) -> "CompiledTimeline":
        counts = [len(seq) for seq in stages_mb]
        stage_offsets = np.zeros(num_stages + 1, dtype=np.int64)
        if counts:
            np.cumsum(counts, out=stage_offsets[1:])
        total = int(stage_offsets[-1])
        op_stage = np.empty(total, dtype=np.int64)
        op_microbatch = np.empty(total, dtype=np.int64)
        op_is_forward = np.empty(total, dtype=bool)
        for stage in range(num_stages):
            a, b = stage_offsets[stage], stage_offsets[stage + 1]
            op_stage[a:b] = stage
            op_microbatch[a:b] = np.asarray(stages_mb[stage], dtype=np.int64)
            op_is_forward[a:b] = np.asarray(stages_fwd[stage], dtype=bool)
        if total and op_microbatch.min() < 0:
            raise UnsupportedScheduleError("negative micro-batch index")
        return cls(num_stages, op_stage, op_microbatch, op_is_forward, stage_offsets)

    def _build_dependencies(self) -> None:
        n, c = self.num_ops, self.num_stages
        mb, st, fwd = self.op_microbatch, self.op_stage, self.op_is_forward
        m = self.num_microbatches
        # (microbatch, stage, type) -> op id; detect duplicates.
        index = np.full((max(m, 1), max(c, 1), 2), -1, dtype=np.int64)
        type_col = fwd.astype(np.int64)
        if n:
            unique = {(int(a), int(b), bool(d)) for a, b, d in zip(mb, st, fwd)}
            if len(unique) != n:
                raise UnsupportedScheduleError("duplicate op in schedule")
            index[mb, st, type_col] = np.arange(n, dtype=np.int64)

        dep = np.full(n, -1, dtype=np.int64)
        comm_kind = np.zeros(n, dtype=np.int8)
        comm_src = np.full(n, -1, dtype=np.int64)
        if n:
            f_up = fwd & (st > 0)  # forward waits on upstream forward
            dep[f_up] = index[mb[f_up], st[f_up] - 1, 1]
            comm_kind[f_up] = COMM_ACT
            comm_src[f_up] = st[f_up] - 1
            b_last = ~fwd & (st == c - 1)  # last stage's backward waits on its forward
            dep[b_last] = index[mb[b_last], st[b_last], 1]
            b_down = ~fwd & (st < c - 1)  # backward waits on downstream backward
            dep[b_down] = index[mb[b_down], st[b_down] + 1, 0]
            comm_kind[b_down] = COMM_GRAD
            comm_src[b_down] = st[b_down] + 1
            needs_dep = f_up | b_last | b_down
            missing = needs_dep & (dep < 0)
            if missing.any():
                i = int(np.flatnonzero(missing)[0])
                raise SimulationError(
                    "simulation cannot make progress: "
                    f"{_op_name(int(mb[i]), int(st[i]), bool(fwd[i]))} depends on "
                    f"{self._dep_name(i)}, which never appears in the schedule"
                )
        self.dep = dep
        self.comm_kind = comm_kind
        self.comm_src = comm_src
        # Same-device predecessor: previous op on the stage.
        prev = np.arange(-1, n - 1, dtype=np.int64)
        firsts = self.stage_offsets[:-1]
        prev[firsts[firsts < n]] = -1
        self.prev = prev

    def _dep_name(self, i: int) -> str:
        """Name of op ``i``'s cross-stage dependency (for diagnostics)."""
        mb = int(self.op_microbatch[i])
        st = int(self.op_stage[i])
        if self.op_is_forward[i]:
            return _op_name(mb, st - 1, True)
        if st == self.num_stages - 1:
            return _op_name(mb, st, True)
        return _op_name(mb, st + 1, False)

    def _build_waves(self) -> None:
        """Topologically level the dependency DAG (Kahn), detect deadlocks,
        and lay the solver arrays out in wave-major order."""
        n = self.num_ops
        dep, prev = self.dep, self.prev
        level = np.zeros(n, dtype=np.int64)
        indegree = ((dep >= 0).astype(np.int64) + (prev >= 0)).tolist()
        children: list[list[int]] = [[] for _ in range(n)]
        for i in range(n):
            if dep[i] >= 0:
                children[dep[i]].append(i)
            if prev[i] >= 0:
                children[prev[i]].append(i)
        queue: deque[int] = deque(i for i in range(n) if indegree[i] == 0)
        resolved = np.zeros(n, dtype=bool)
        while queue:
            i = queue.popleft()
            resolved[i] = True
            level_i = level[i]
            for j in children[i]:
                if level_i + 1 > level[j]:
                    level[j] = level_i + 1
                indegree[j] -= 1
                if indegree[j] == 0:
                    queue.append(j)
        if n and not resolved.all():
            i = int(np.flatnonzero(~resolved)[0])  # first blocked, stage-major
            blocker = None
            if dep[i] >= 0 and not resolved[dep[i]]:
                blocker = int(dep[i])
            elif prev[i] >= 0 and not resolved[prev[i]]:
                blocker = int(prev[i])
            blocker_name = (
                _op_name(
                    int(self.op_microbatch[blocker]),
                    int(self.op_stage[blocker]),
                    bool(self.op_is_forward[blocker]),
                )
                if blocker is not None
                else "an unresolved dependency"
            )
            raise SimulationError(
                "simulation cannot make progress: "
                f"{_op_name(int(self.op_microbatch[i]), int(self.op_stage[i]), bool(self.op_is_forward[i]))}"
                f" is blocked waiting for {blocker_name}, which cannot execute "
                "(circular or misordered schedule dependencies)"
            )
        # Wave-major layout: `order` maps wave position -> op id.
        order = np.argsort(level, kind="stable")
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = np.arange(n, dtype=np.int64)
        sorted_levels = level[order]
        boundaries = np.flatnonzero(np.diff(sorted_levels)) + 1
        offsets = np.concatenate(([0], boundaries, [n])).astype(np.int64)
        self.order = order
        self.inverse = inverse
        self.wave_offsets = offsets
        dep_w = np.where(dep[order] >= 0, inverse[np.maximum(dep[order], 0)], -1)
        prev_w = np.where(prev[order] >= 0, inverse[np.maximum(prev[order], 0)], -1)
        self._has_dep_w = dep_w >= 0
        self._dep_clip_w = np.maximum(dep_w, 0)
        self._has_prev_w = prev_w >= 0
        self._prev_clip_w = np.maximum(prev_w, 0)

    # ------------------------------------------------------------------ gathers

    def durations_from(self, duration_fn, schedule: PipelineSchedule | None = None) -> np.ndarray:
        """Per-op duration array from a mapping/callable over compute ops.

        When the originating ``schedule`` is given, its existing
        :class:`~repro.schedule.events.ComputeOp` objects are reused for the
        lookups (no per-op object construction).
        """
        if schedule is not None:
            if callable(duration_fn):
                values = [duration_fn(op) for op in schedule.all_ops()]
            else:
                values = [duration_fn[op] for op in schedule.all_ops()]
            return np.asarray(values, dtype=np.float64)
        from repro.schedule.events import ComputeOp

        values = []
        for i in range(self.num_ops):
            op = ComputeOp(
                int(self.op_microbatch[i]),
                int(self.op_stage[i]),
                OpType.FORWARD if self.op_is_forward[i] else OpType.BACKWARD,
            )
            values.append(duration_fn(op) if callable(duration_fn) else duration_fn[op])
        return np.asarray(values, dtype=np.float64)

    def comm_from(self, comm_time_fn) -> np.ndarray:
        """Per-op dependency-edge communication times from a callback."""
        comm = np.zeros(self.num_ops, dtype=np.float64)
        mb, st = self.op_microbatch, self.op_stage
        for i in np.flatnonzero(self.comm_kind == COMM_ACT):
            comm[i] = comm_time_fn(int(mb[i]), int(st[i]) - 1, int(st[i]), False)
        for i in np.flatnonzero(self.comm_kind == COMM_GRAD):
            comm[i] = comm_time_fn(int(mb[i]), int(st[i]) + 1, int(st[i]), True)
        return comm

    # ------------------------------------------------------------------ solving

    def solve(self, durations: np.ndarray, comm: np.ndarray | None = None) -> TimelineSolution:
        """Solve the timing recurrence for one duration vector.

        Args:
            durations: Per-op durations in op-id (stage-major) order.
            comm: Optional per-op communication times added to the
                cross-stage dependency edge (zero where the op has none).

        Returns:
            A :class:`TimelineSolution` with starts/ends in op-id order.
        """
        n = self.num_ops
        d_w = np.maximum(np.asarray(durations, dtype=np.float64), 0.0)[self.order]
        c_w = None if comm is None else np.asarray(comm, dtype=np.float64)[self.order]
        starts_w = np.zeros(n, dtype=np.float64)
        ends_w = np.zeros(n, dtype=np.float64)
        offsets = self.wave_offsets
        for w in range(len(offsets) - 1):
            a, b = int(offsets[w]), int(offsets[w + 1])
            dep_ready = ends_w[self._dep_clip_w[a:b]]
            if c_w is not None:
                dep_ready = dep_ready + c_w[a:b]
            dep_ready = np.where(self._has_dep_w[a:b], dep_ready, 0.0)
            prev_ready = np.where(
                self._has_prev_w[a:b], ends_w[self._prev_clip_w[a:b]], 0.0
            )
            start = np.maximum(prev_ready, dep_ready)
            starts_w[a:b] = start
            ends_w[a:b] = start + d_w[a:b]
        starts = np.empty(n, dtype=np.float64)
        ends = np.empty(n, dtype=np.float64)
        starts[self.order] = starts_w
        ends[self.order] = ends_w
        makespan = float(ends_w.max()) if n else 0.0
        _STATS["timeline_solves"] += 1
        return TimelineSolution(starts=starts, ends=ends, makespan_ms=makespan)

    def solve_batch(
        self, durations: np.ndarray, comm: np.ndarray | None = None
    ) -> TimelineSolution:
        """Solve many duration vectors at once.

        Args:
            durations: ``(num_solves, num_ops)`` duration matrix.
            comm: Optional comm times, either ``(num_ops,)`` (shared) or
                ``(num_solves, num_ops)``.

        Returns:
            A :class:`TimelineSolution` whose ``starts``/``ends`` have shape
            ``(num_solves, num_ops)`` and whose ``makespan_ms`` is an array of
            per-solve makespans.
        """
        n = self.num_ops
        d = np.maximum(np.asarray(durations, dtype=np.float64), 0.0)
        if d.ndim != 2:
            raise ValueError(f"expected a (num_solves, num_ops) matrix, got shape {d.shape}")
        d_w = d[:, self.order]
        c_w = None
        if comm is not None:
            c = np.asarray(comm, dtype=np.float64)
            c_w = c[self.order] if c.ndim == 1 else c[:, self.order]
        num_solves = d_w.shape[0]
        starts_w = np.zeros((num_solves, n), dtype=np.float64)
        ends_w = np.zeros((num_solves, n), dtype=np.float64)
        offsets = self.wave_offsets
        for w in range(len(offsets) - 1):
            a, b = int(offsets[w]), int(offsets[w + 1])
            dep_ready = ends_w[:, self._dep_clip_w[a:b]]
            if c_w is not None:
                dep_ready = dep_ready + (c_w[a:b] if c_w.ndim == 1 else c_w[:, a:b])
            dep_ready = np.where(self._has_dep_w[a:b], dep_ready, 0.0)
            prev_ready = np.where(
                self._has_prev_w[a:b], ends_w[:, self._prev_clip_w[a:b]], 0.0
            )
            start = np.maximum(prev_ready, dep_ready)
            starts_w[:, a:b] = start
            ends_w[:, a:b] = start + d_w[:, a:b]
        starts = np.empty_like(starts_w)
        ends = np.empty_like(ends_w)
        starts[:, self.order] = starts_w
        ends[:, self.order] = ends_w
        makespans = ends_w.max(axis=1) if n else np.zeros(num_solves)
        _STATS["timeline_solves"] += num_solves
        return TimelineSolution(starts=starts, ends=ends, makespan_ms=makespans)

    # ------------------------------------------------------------------ accounting

    def device_busy_idle(
        self, starts: np.ndarray, ends: np.ndarray, makespan: float
    ) -> tuple[list[float], list[float]]:
        """Per-device busy and idle time for one solve.

        Sequential (cumsum) accumulation in stage order keeps the floats
        bit-identical to the scalar engine's running sums.
        """
        busy: list[float] = []
        idle: list[float] = []
        spans = ends - starts
        for stage in range(self.num_stages):
            a, b = int(self.stage_offsets[stage]), int(self.stage_offsets[stage + 1])
            total = float(np.cumsum(spans[a:b])[-1]) if b > a else 0.0
            busy.append(total)
            idle.append(max(makespan - total, 0.0))
        return busy, idle

    def _check_memory_order(self) -> None:
        """Validate that every backward is preceded by its own forward on the
        same stage — the invariant the scalar MemoryTracker enforces op by op."""
        if self._memory_order_checked:
            return
        m = self.num_microbatches
        for stage in range(self.num_stages):
            a, b = int(self.stage_offsets[stage]), int(self.stage_offsets[stage + 1])
            mbs = self.op_microbatch[a:b]
            fwd = self.op_is_forward[a:b]
            positions = np.arange(b - a, dtype=np.int64)
            pos_f = np.full(max(m, 1), -1, dtype=np.int64)
            pos_b = np.full(max(m, 1), -1, dtype=np.int64)
            pos_f[mbs[fwd]] = positions[fwd]
            pos_b[mbs[~fwd]] = positions[~fwd]
            bad = (pos_b >= 0) & ((pos_f < 0) | (pos_f > pos_b))
            if bad.any():
                mb = int(np.flatnonzero(bad)[0])
                raise MemoryAccountingError(
                    f"backward of micro-batch {mb} on stage {stage} executes "
                    "before (or without) its forward"
                )
        self._memory_order_checked = True

    def peak_activation(
        self,
        activation_bytes: np.ndarray,
        static_bytes: Sequence[float] | None = None,
    ) -> list[float]:
        """Per-device peak activation memory (order-only; timing-independent).

        Args:
            activation_bytes: ``[microbatch][stage]`` activation footprints.
            static_bytes: Optional per-device static memory.

        Returns:
            Peak bytes per device, bit-identical to the scalar tracker.
        """
        self._check_memory_order()
        act = np.asarray(activation_bytes, dtype=np.float64)
        peaks: list[float] = []
        for stage in range(self.num_stages):
            a, b = int(self.stage_offsets[stage]), int(self.stage_offsets[stage + 1])
            static = float(static_bytes[stage]) if static_bytes else 0.0
            mbs = self.op_microbatch[a:b]
            fwd = self.op_is_forward[a:b]
            values = act[mbs, stage]
            deltas = np.where(fwd, values, -values)
            running = np.cumsum(np.concatenate(([static], deltas)))
            allocated = running[1:][fwd]
            peak = float(allocated.max()) if allocated.size else static
            peaks.append(max(static, peak))
        return peaks
