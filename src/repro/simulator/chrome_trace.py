"""Chrome-trace export of execution traces.

Converts an :class:`~repro.simulator.trace.ExecutionTrace` into the Chrome
trace-event JSON format so pipelines can be inspected interactively in
``chrome://tracing`` or Perfetto — the standard way real training systems
visualise their timelines.  Each device becomes a "thread"; compute and
communication events are separated into two tracks per device.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.simulator.trace import ExecutionTrace

#: Microseconds per millisecond (trace events use microseconds).
_US_PER_MS = 1000.0


def trace_to_chrome_events(
    trace: ExecutionTrace, process_id: int = 0, process_name: str | None = None
) -> list[dict[str, Any]]:
    """Convert a trace to a list of Chrome trace-event dictionaries.

    ``process_name`` labels the whole trace's "process" row — the fleet
    scheduler uses it to title a cluster-occupancy timeline, where each
    device's track shows which job's iterations it ran.
    """
    events: list[dict[str, Any]] = []
    if process_name is not None:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": process_id,
                "args": {"name": process_name},
            }
        )
    devices = sorted({event.device for event in trace.events})
    for device in devices:
        for suffix, category in (("compute", "compute"), ("comm", "comm")):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": process_id,
                    "tid": device * 2 + (0 if category == "compute" else 1),
                    "args": {"name": f"device {device} ({suffix})"},
                }
            )
    for event in trace.events:
        tid = event.device * 2 + (0 if event.category == "compute" else 1)
        events.append(
            {
                "name": event.name,
                "cat": event.category,
                "ph": "X",
                "pid": process_id,
                "tid": tid,
                "ts": event.start_ms * _US_PER_MS,
                "dur": event.duration_ms * _US_PER_MS,
                "args": {"microbatch": event.microbatch},
            }
        )
    return events


def save_chrome_trace(
    trace: ExecutionTrace, path: str | Path, process_name: str | None = None
) -> Path:
    """Write the trace as a ``chrome://tracing`` compatible JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": trace_to_chrome_events(trace, process_name=process_name),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload))
    return path
