"""Chrome-trace export of execution traces.

Converts an :class:`~repro.simulator.trace.ExecutionTrace` into the Chrome
trace-event JSON format so pipelines can be inspected interactively in
``chrome://tracing`` or Perfetto — the standard way real training systems
visualise their timelines.  Each device becomes a "thread"; compute and
communication events are separated into two tracks per device.

The pid/tid scheme and metadata events come from the shared helpers in
:mod:`repro.obs.chrome`, so a standalone schedule trace, a fleet occupancy
timeline and the merged fleet↔simulator trace all label their tracks the
same way.  Standalone exports keep the historical ``pid=0``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs import chrome as _chrome
from repro.simulator.trace import ExecutionTrace

#: Microseconds per millisecond (trace events use microseconds).
_US_PER_MS = _chrome.US_PER_MS


def trace_to_chrome_events(
    trace: ExecutionTrace, process_id: int = 0, process_name: str | None = None
) -> list[dict[str, Any]]:
    """Convert a trace to a list of Chrome trace-event dictionaries.

    ``process_name`` labels the whole trace's "process" row — the fleet
    scheduler uses it to title a cluster-occupancy timeline, where each
    device's track shows which job's iterations it ran.
    """
    events: list[dict[str, Any]] = []
    if process_name is not None:
        events.extend(_chrome.process_name_event(process_id, process_name))
    devices = {event.device for event in trace.events}
    events.extend(_chrome.device_thread_metadata(process_id, devices))
    events.extend(_chrome.trace_events_to_chrome(trace.events, process_id))
    return events


def save_chrome_trace(
    trace: ExecutionTrace, path: str | Path, process_name: str | None = None
) -> Path:
    """Write the trace as a ``chrome://tracing`` compatible JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": trace_to_chrome_events(trace, process_name=process_name),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload))
    return path
