"""Training metrics containers and aggregation.

Throughput is reported the way the paper does (§8, "Metrics"): the number of
*actual* tokens in the training data divided by the time needed to process
them — padding tokens do not count towards throughput, so a system that pads
heavily is penalised even if its raw step time is similar.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.stats import mean, mean_percentage_error


@dataclass
class IterationRecord:
    """Per-iteration measurements of a training run.

    Attributes:
        iteration: Iteration index.
        actual_tokens: Non-padding tokens processed.
        padded_tokens: Total tokens processed including padding.
        predicted_ms: Planner's predicted iteration time.
        measured_ms: Simulated ("measured") iteration time.
        predicted_peak_bytes: Planner's predicted peak memory (max over stages).
        measured_peak_bytes: Simulated peak memory (max over stages).
        planning_time_s: Wall-clock planning time of the iteration.
        num_microbatches: Number of micro-batches executed.
        recompute: Recomputation mode used.
    """

    iteration: int
    actual_tokens: int
    padded_tokens: int
    predicted_ms: float
    measured_ms: float
    predicted_peak_bytes: float
    measured_peak_bytes: float
    planning_time_s: float
    num_microbatches: int
    recompute: str


@dataclass
class TrainingReport:
    """Aggregated results of a (simulated) training run.

    Attributes:
        system: Name of the system that produced the run.
        records: Per-iteration records.
        encoder_padding_efficiency: Mean padding efficiency of input tensors.
        decoder_padding_efficiency: Mean padding efficiency of target tensors
            (``None`` for decoder-only models).
    """

    system: str
    records: list[IterationRecord] = field(default_factory=list)
    encoder_padding_efficiency: float = 0.0
    decoder_padding_efficiency: float | None = None

    # ------------------------------------------------------------------ throughput

    @property
    def total_actual_tokens(self) -> int:
        """Real tokens processed over the run."""
        return sum(record.actual_tokens for record in self.records)

    @property
    def total_time_s(self) -> float:
        """Total simulated execution time in seconds."""
        return sum(record.measured_ms for record in self.records) / 1e3

    @property
    def throughput_tokens_per_s(self) -> float:
        """Actual (non-padding) tokens per second of simulated execution."""
        total_time = self.total_time_s
        return self.total_actual_tokens / total_time if total_time > 0 else 0.0

    @property
    def padding_efficiency(self) -> float:
        """Overall non-padding fraction of processed tokens."""
        padded = sum(record.padded_tokens for record in self.records)
        if padded == 0:
            return 0.0
        return self.total_actual_tokens / padded

    # ------------------------------------------------------------------ planner accuracy

    @property
    def mean_planning_time_s(self) -> float:
        """Mean per-iteration planning time."""
        if not self.records:
            return 0.0
        return mean(record.planning_time_s for record in self.records)

    @property
    def planning_to_iteration_ratio(self) -> float:
        """Mean ratio of planning time to measured iteration time (Fig. 17b)."""
        ratios = [
            record.planning_time_s * 1e3 / record.measured_ms
            for record in self.records
            if record.measured_ms > 0
        ]
        return mean(ratios) if ratios else 0.0

    def time_prediction_error_percent(self) -> float:
        """Mean percentage error of iteration-time predictions (Fig. 18a)."""
        if not self.records:
            return 0.0
        return mean_percentage_error(
            [record.predicted_ms for record in self.records],
            [record.measured_ms for record in self.records],
        )

    def memory_prediction_error_percent(self) -> float:
        """Mean percentage error of peak-memory predictions (Fig. 18b)."""
        if not self.records:
            return 0.0
        return mean_percentage_error(
            [record.predicted_peak_bytes for record in self.records],
            [record.measured_peak_bytes for record in self.records],
        )

    def summary(self) -> dict:
        """Compact dictionary summary used by the benchmark harnesses."""
        return {
            "system": self.system,
            "iterations": len(self.records),
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "padding_efficiency": self.padding_efficiency,
            "encoder_padding_efficiency": self.encoder_padding_efficiency,
            "decoder_padding_efficiency": self.decoder_padding_efficiency,
            "mean_planning_time_s": self.mean_planning_time_s,
            "planning_to_iteration_ratio": self.planning_to_iteration_ratio,
            "time_mpe_percent": self.time_prediction_error_percent(),
            "memory_mpe_percent": self.memory_prediction_error_percent(),
        }
