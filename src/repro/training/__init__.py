"""End-to-end (simulated) training runs.

A training run wires a planner (DynaPipe or the MLM+DS baseline) to the
synthetic dataset, executes every iteration's plans on the instruction-level
executor with execution-time noise, and aggregates the metrics the paper
reports: throughput in real (non-padding) tokens per second, padding
efficiency, planning time, and the accuracy of the planner's time/memory
predictions against the simulated execution.
"""

from repro.training.throughput import IterationRecord, TrainingReport
from repro.training.trainer import TrainingSession, TrainerConfig

__all__ = ["TrainingSession", "TrainerConfig", "TrainingReport", "IterationRecord"]
