"""Simulated training loop.

:class:`TrainingSession` drives a planner (DynaPipe's
:class:`~repro.core.planner.DynaPipePlanner` or the
:class:`~repro.baselines.mlm_ds.MLMDeepSpeedBaseline`) over a dataset epoch:
for every mini-batch the planner produces execution plans, the plans are run
on the instruction-level executor against the *analytic* stage models (the
ground truth the cost model only approximates) with multiplicative
execution-time noise, and the resulting iteration times, memory peaks and
padding statistics are aggregated into a :class:`~repro.training.throughput.TrainingReport`.

The split between "predicted" (interpolated cost model, no noise) and
"measured" (analytic model + noise) is what gives the cost-model accuracy
experiment (Fig. 18) meaningful error bars, exactly as profiling-based
prediction differs from real execution on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.backends import BackendOptions, ExecutionBackend, get_backend
from repro.batching.metrics import PaddingStats
from repro.cluster.device import SimulatedGPU
from repro.cluster.network import NetworkModel
from repro.core.execution_plan import ExecutionPlan
from repro.core.planner import IterationPlan
from repro.data.sampler import MiniBatch, MiniBatchSampler
from repro.data.tasks import Sample
from repro.data.truncation import truncate_samples
from repro.instructions.ops import BackwardPass, ForwardPass, PipelineInstruction
from repro.model.transformer import build_stage_models
from repro.obs import state as _obs_state
from repro.obs.spans import span as _span
from repro.runtime.planner_pool import PlannerPool
from repro.simulator.executor import ExecutionResult
from repro.training.throughput import IterationRecord, TrainingReport
from repro.utils.rng import SeedLike, new_rng


#: Fraction of the data-parallel gradient all-reduce exposed on the
#: iteration's critical path at execution time (the rest overlaps the
#: backward pass, as Megatron/DeepSpeed gradient overlap does).
_EXPOSED_DP_FRACTION = 0.5


class IterationPlanner(Protocol):
    """Anything that can plan a training iteration (DynaPipe or baseline)."""

    cost_model: object
    data_parallel_size: int

    def plan(self, samples: list[Sample], iteration: int = 0) -> IterationPlan:
        """Produce the iteration's execution plans."""
        ...  # pragma: no cover - protocol definition


@dataclass
class TrainerConfig:
    """Configuration of a simulated training run.

    Attributes:
        max_iterations: Number of mini-batches to process (None = full epoch).
        noise_std: Standard deviation of the multiplicative execution-time
            noise applied by the simulated devices.
        seed: Seed for the noise and the mini-batch sampler.
        max_seq_len: Maximum sequence length; longer samples are truncated
            before planning (both systems truncate, §8.1).
        stages_same_node: Link class for inter-stage transfers at execution.
        execute_plans: When False, skip the instruction-level execution and
            use the planner's predictions as the measured time (useful for
            fast sweeps where only relative planning output matters).
        planner_processes: When > 0, plan iterations ahead of execution with
            a :class:`~repro.runtime.planner_pool.PlannerPool` of that many
            worker processes (the paper's CPU-side planning overlap) instead
            of planning inline; plans are bit-identical to inline planning.
        planner_lookahead: Plan-ahead window (in iterations) of the pooled
            mode.
        planner_timeout_s: Maximum time to wait for one iteration's plan in
            the pooled mode before failing the run (a slow-but-healthy
            planner should raise this, not die).
        start_iteration: First iteration to process.  Earlier mini-batches
            are skipped (but keep their iteration numbers) and the
            execution-noise RNG is fast-forwarded as if they had executed,
            so a session resumed at an iteration boundary reproduces
            iterations ``>= start_iteration`` of an uninterrupted run
            bit-identically — the checkpoint/resume contract of the fleet
            scheduler's elastic re-plan path.
        execution_backend: Registered execution backend that runs the
            instruction streams (see :func:`repro.backends.get_backend`).
            ``"sim"`` (default) is the discrete-event executor and keeps
            every report bit-identical to previous releases; ``"local"``
            really executes each replica's streams on one worker process
            per stage with real IPC — it validates ordering and
            deadlock-freedom on a live runtime, but its measured iteration
            times are wall-clock milliseconds of the (tiny) real run, not
            simulated hardware time, so use it for conformance/validation
            runs rather than throughput figures.
        backend_options: Extra keyword arguments for the backend
            constructor (e.g. the local backend's ``timeout_s``).
    """

    max_iterations: int | None = 20
    noise_std: float = 0.05
    seed: SeedLike = 0
    max_seq_len: int | None = None
    stages_same_node: bool = True
    execute_plans: bool = True
    planner_processes: int = 0
    planner_lookahead: int = 4
    planner_timeout_s: float = 600.0
    start_iteration: int = 0
    execution_backend: str = "sim"
    backend_options: dict | None = None


class TrainingSession:
    """Runs a planner over a dataset epoch on the simulated cluster.

    Args:
        planner: The system under test (must expose ``plan`` and ``cost_model``).
        samples: Dataset samples for the epoch.
        global_batch_tokens: Global batch size in tokens per iteration.
        config: Trainer configuration.
        system_name: Label used in the report.
        network: Communication model used at execution time.
    """

    def __init__(
        self,
        planner: IterationPlanner,
        samples: Sequence[Sample],
        global_batch_tokens: int,
        config: TrainerConfig | None = None,
        system_name: str = "dynapipe",
        network: NetworkModel | None = None,
    ) -> None:
        self.planner = planner
        self.config = config or TrainerConfig()
        if self.config.start_iteration < 0:
            raise ValueError(
                f"start_iteration must be >= 0, got {self.config.start_iteration}"
            )
        self.system_name = system_name
        self.network = network or NetworkModel()
        cost_model = planner.cost_model
        self.cost_model = cost_model
        decoder_only = not cost_model.config.is_encoder_decoder
        if self.config.max_seq_len is not None:
            samples = truncate_samples(
                samples, self.config.max_seq_len, decoder_only=decoder_only
            )
        self.samples = list(samples)
        self.sampler = MiniBatchSampler(
            self.samples, global_batch_tokens, seed=self.config.seed
        )
        # Ground-truth stage models driven by a *noisy* device: this is what
        # "really" happens when a plan executes.
        self.stage_models = build_stage_models(
            cost_model.config,
            cost_model.num_stages,
            tensor_parallel=cost_model.tensor_parallel,
            zero_shards=cost_model.zero_shards,
        )
        self._noise_rng = new_rng(self.config.seed)
        #: Per-replica op traces of the most recent executed iteration
        #: (empty tuple when telemetry is off or nothing executed yet); the
        #: fleet scheduler forwards these to the merged-trace collector.
        self.last_op_traces: tuple = ()
        # Resuming at an iteration boundary: burn the noise-seed draws the
        # skipped iterations would have consumed (one per replica executor,
        # data_parallel_size per iteration), so the remaining iterations see
        # exactly the seeds an uninterrupted run would have given them.
        replicas = max(1, getattr(planner, "data_parallel_size", 1))
        for _ in range(self.config.start_iteration * replicas):
            self._noise_rng.integers(0, 2**31 - 1)

    # ------------------------------------------------------------------ execution

    def _make_backend(self) -> ExecutionBackend:
        """Execution backend with fresh per-iteration noise.

        Exactly one noise-seed draw per call regardless of backend, so the
        checkpoint/resume RNG fast-forward (one draw per replica executor)
        stays valid and the default ``"sim"`` backend remains bit-identical
        to the pre-backend-registry trainer.
        """
        noisy_gpu = SimulatedGPU(
            self.cost_model.device_spec,
            noise_std=self.config.noise_std,
            seed=int(self._noise_rng.integers(0, 2**31 - 1)),
        )

        def duration(instr: PipelineInstruction) -> float:
            stage_model = self.stage_models[instr.stage]
            if isinstance(instr, ForwardPass):
                return stage_model.forward_time_ms(noisy_gpu, instr.shape)
            if isinstance(instr, BackwardPass):
                return stage_model.backward_time_ms(noisy_gpu, instr.shape, instr.recompute)
            raise TypeError(f"not a compute instruction: {type(instr).__name__}")

        def activation(instr: PipelineInstruction) -> float:
            return self.stage_models[instr.stage].activation_bytes(instr.shape, instr.recompute)

        def transfer(nbytes: float, src: int, dst: int) -> float:
            return self.network.p2p_time_ms(nbytes, same_node=self.config.stages_same_node)

        static = [
            self.cost_model.stage_static_bytes(j) for j in range(self.cost_model.num_stages)
        ]
        options = BackendOptions(
            compute_duration_fn=duration,
            transfer_time_fn=transfer,
            activation_bytes_fn=activation,
            static_bytes=static,
        )
        return get_backend(
            self.config.execution_backend,
            options,
            **(self.config.backend_options or {}),
        )

    @staticmethod
    def _predicted_peak_bytes(plans: Sequence[ExecutionPlan]) -> float:
        """Largest per-stage predicted peak across replica plans."""
        return max(
            max(plan.metadata.predicted_peak_memory_bytes or [0.0]) for plan in plans
        )

    def _execute_replica_plans(
        self, plans: Sequence[ExecutionPlan], data_parallel_comm_ms: float
    ) -> tuple[float, float]:
        """Run each replica's plan; returns (iteration ms, peak memory bytes).

        Shared by the inline and pooled paths so they measure identically.
        """
        replica_times = []
        peak_memory = 0.0
        collect = _obs_state.enabled()
        traces = []
        with _span("execute", num_replicas=len(plans)):
            for plan in plans:
                backend = self._make_backend()
                result: ExecutionResult = backend.run(plan.device_instructions)
                replica_times.append(result.makespan_ms)
                peak_memory = max(peak_memory, max(result.peak_memory_bytes))
                if collect:
                    traces.append(result.trace)
        self.last_op_traces = tuple(traces)
        exposed_dp = data_parallel_comm_ms * _EXPOSED_DP_FRACTION
        return max(replica_times) + exposed_dp, peak_memory

    def execute_iteration(self, plan: IterationPlan) -> tuple[float, float]:
        """Execute an iteration's plans; returns (iteration ms, peak memory bytes)."""
        if not self.config.execute_plans:
            self.last_op_traces = ()
            return plan.predicted_iteration_ms, self._predicted_peak_bytes(plan.plans)
        return self._execute_replica_plans(plan.plans, plan.data_parallel_comm_ms)

    # ------------------------------------------------------------------ run loop

    def epoch_minibatches(self) -> list[MiniBatch]:
        """The epoch's mini-batches in ``[start_iteration, max_iterations)``.

        Mini-batches keep their absolute iteration indices, so a resumed
        session (``start_iteration > 0``) sees exactly the tail of the
        uninterrupted epoch.  The fleet scheduler steps these one at a time.
        """
        minibatches: list[MiniBatch] = []
        for minibatch in self.sampler.epoch(0):
            if (
                self.config.max_iterations is not None
                and minibatch.index >= self.config.max_iterations
            ):
                break
            if minibatch.index < self.config.start_iteration:
                continue
            minibatches.append(minibatch)
        return minibatches

    @staticmethod
    def _finalize_report(
        report: TrainingReport, enc_eff: list[float], dec_eff: list[float]
    ) -> TrainingReport:
        """Fold the per-iteration padding efficiencies into the report."""
        if enc_eff:
            report.encoder_padding_efficiency = sum(enc_eff) / len(enc_eff)
        if dec_eff:
            report.decoder_padding_efficiency = sum(dec_eff) / len(dec_eff)
        return report

    def run(self) -> TrainingReport:
        """Process the epoch (or the configured number of iterations)."""
        if self.config.planner_processes > 0:
            return self._run_pooled()
        report = TrainingReport(system=self.system_name)
        enc_eff: list[float] = []
        dec_eff: list[float] = []
        for minibatch in self.epoch_minibatches():
            record = self.run_iteration(minibatch)
            report.records.append(record)
            stats = self.last_padding_stats
            enc_eff.append(stats.encoder_efficiency)
            if stats.decoder_efficiency is not None:
                dec_eff.append(stats.decoder_efficiency)
        return self._finalize_report(report, enc_eff, dec_eff)

    def _run_pooled(self) -> TrainingReport:
        """Epoch loop with planning fanned out to worker processes.

        The pool plans ``planner_lookahead`` iterations ahead while the
        current one executes; every consumed iteration advances the window.
        Plans travel as serialised payloads, so execution re-derives
        everything from the instruction streams exactly as the executor
        service does.
        """
        report = TrainingReport(system=self.system_name)
        minibatches = self.epoch_minibatches()
        if not minibatches:
            return report
        pool = PlannerPool(
            planner=self.planner,
            minibatches=[mb.samples for mb in minibatches],
            num_workers=self.config.planner_processes,
            lookahead=self.config.planner_lookahead,
            start_iteration=minibatches[0].index,
        )
        enc_eff: list[float] = []
        dec_eff: list[float] = []
        pool.start()
        try:
            # Plans are keyed by absolute iteration index (the pool's
            # start_iteration anchors a resumed session's tail), matching
            # the keys an uninterrupted run would use.
            for minibatch in minibatches:
                payload = pool.wait_payload(
                    minibatch.index, timeout=self.config.planner_timeout_s
                )
                record, stats = self.record_from_payload(minibatch.index, payload)
                report.records.append(record)
                enc_eff.append(stats.encoder_efficiency)
                if stats.decoder_efficiency is not None:
                    dec_eff.append(stats.decoder_efficiency)
                pool.notify_consumed(minibatch.index)
        finally:
            pool.stop()
        return self._finalize_report(report, enc_eff, dec_eff)

    def record_from_payload(
        self, iteration: int, payload: dict
    ) -> tuple[IterationRecord, PaddingStats]:
        """Execute one pooled iteration's serialised plans and record it."""
        stats = PaddingStats.from_dict(payload["padding"])
        replica_plans = [ExecutionPlan.from_dict(p) for p in payload["replicas"]]
        predicted_ms = float(payload["predicted_iteration_ms"])
        predicted_peak = self._predicted_peak_bytes(replica_plans)
        if not self.config.execute_plans:
            self.last_op_traces = ()
            measured_ms, measured_peak = predicted_ms, predicted_peak
        else:
            measured_ms, measured_peak = self._execute_replica_plans(
                replica_plans, float(payload["data_parallel_comm_ms"])
            )
        record = IterationRecord(
            iteration=iteration,
            actual_tokens=stats.actual_tokens,
            padded_tokens=stats.padded_tokens,
            predicted_ms=predicted_ms,
            measured_ms=measured_ms,
            predicted_peak_bytes=predicted_peak,
            measured_peak_bytes=measured_peak,
            planning_time_s=float(payload["planning_time_s"]),
            num_microbatches=int(payload["num_microbatches"]),
            recompute=str(payload["recompute"]),
        )
        return record, stats

    @property
    def last_padding_stats(self) -> PaddingStats:
        """Padding statistics of the most recent :meth:`run_iteration` call."""
        return self._last_padding_stats

    def run_iteration(self, minibatch: MiniBatch) -> IterationRecord:
        """Plan and execute one mini-batch, returning its record."""
        plan = self.planner.plan(minibatch.samples, iteration=minibatch.index)
        measured_ms, measured_peak = self.execute_iteration(plan)
        # plan.padding already covers all of the iteration's micro-batches
        # (the pooled path relies on exactly this payload field).
        stats = self._last_padding_stats = plan.padding
        predicted_peak = self._predicted_peak_bytes(plan.plans)
        return IterationRecord(
            iteration=minibatch.index,
            actual_tokens=stats.actual_tokens,
            padded_tokens=stats.padded_tokens,
            predicted_ms=plan.predicted_iteration_ms,
            measured_ms=measured_ms,
            predicted_peak_bytes=predicted_peak,
            measured_peak_bytes=measured_peak,
            planning_time_s=plan.planning_time_s,
            num_microbatches=plan.num_microbatches,
            recompute=plan.recompute.value,
        )
