"""Alpha-beta communication cost model.

Pipeline-parallel point-to-point transfers and data-parallel all-reduces are
modelled with the standard latency/bandwidth (alpha-beta) model:

    time(bytes) = latency + bytes / bandwidth

Two link classes matter for the paper's testbed: NVSwitch within a p4d node
(600 GB/s per GPU pair, sub-microsecond latency) and the 400 Gbps EFA fabric
between nodes.  Collectives add the usual ``2 (p-1) / p`` volume factor for
ring all-reduce.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link class.

    Attributes:
        name: Human readable name.
        bandwidth: Achievable bandwidth in bytes/s.
        latency_ms: One-way latency in milliseconds.
    """

    name: str
    bandwidth: float
    latency_ms: float

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("latency_ms", self.latency_ms)

    def transfer_time_ms(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across this link, in milliseconds."""
        check_non_negative("nbytes", nbytes)
        return self.latency_ms + nbytes / self.bandwidth * 1e3


#: Intra-node NVSwitch link (per-GPU-pair effective bandwidth).
NVSWITCH = LinkSpec(name="nvswitch", bandwidth=300e9, latency_ms=0.005)

#: Inter-node 400 Gbps EFA link (per-GPU share of node bandwidth).
EFA_400GBPS = LinkSpec(name="efa-400gbps", bandwidth=50e9 / 8 * 8, latency_ms=0.03)


class NetworkModel:
    """Communication times between devices of a cluster.

    The model only distinguishes whether two devices share a node; all
    intra-node pairs use the intra-node link and all inter-node pairs use the
    inter-node link, which matches the symmetric p4d topology.
    """

    def __init__(
        self,
        intra_node: LinkSpec = NVSWITCH,
        inter_node: LinkSpec = EFA_400GBPS,
    ) -> None:
        self.intra_node = intra_node
        self.inter_node = inter_node

    def link_for(self, same_node: bool) -> LinkSpec:
        """Return the link class connecting two devices."""
        return self.intra_node if same_node else self.inter_node

    def p2p_time_ms(self, nbytes: float, same_node: bool) -> float:
        """Point-to-point transfer time (activations / gradients between
        pipeline stages)."""
        return self.link_for(same_node).transfer_time_ms(nbytes)

    def allreduce_time_ms(self, nbytes: float, participants: int, same_node: bool) -> float:
        """Ring all-reduce time across ``participants`` devices.

        Used for the data-parallel gradient synchronisation and for the
        per-layer tensor-parallel all-reduces.
        """
        if participants < 1:
            raise ValueError(f"participants must be >= 1, got {participants}")
        if participants == 1:
            return 0.0
        link = self.link_for(same_node)
        volume_factor = 2.0 * (participants - 1) / participants
        steps = 2 * (participants - 1)
        return steps * link.latency_ms + nbytes * volume_factor / link.bandwidth * 1e3

    # ------------------------------------------------------------------ serialisation

    def to_dict(self) -> dict[str, Any]:
        """Serialise the link specs (for shipping planners across processes)."""
        return {"intra_node": asdict(self.intra_node), "inter_node": asdict(self.inter_node)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "NetworkModel":
        """Rebuild a :class:`NetworkModel` from :meth:`to_dict` output."""
        return cls(
            intra_node=LinkSpec(**payload["intra_node"]),
            inter_node=LinkSpec(**payload["inter_node"]),
        )
