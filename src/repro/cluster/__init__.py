"""Simulated hardware substrate.

The paper evaluates on Amazon EC2 p4d instances (8×A100-40GB per node,
NVSwitch intra-node, 400 Gbps EFA inter-node).  That hardware is not
available here, so this package provides an analytic stand-in:

* :class:`~repro.cluster.device.DeviceSpec` / :class:`~repro.cluster.device.SimulatedGPU`
  — a roofline-style device model that converts FLOPs and bytes moved into
  execution time, with optional multiplicative noise to emulate real-world
  execution-time variation.
* :class:`~repro.cluster.network.LinkSpec` / :class:`~repro.cluster.network.NetworkModel`
  — alpha-beta communication cost model for intra-node and inter-node links.
* :class:`~repro.cluster.topology.ClusterTopology` — nodes × GPUs layout and
  mapping from (data, pipeline, tensor) parallel ranks to physical devices.

All planner decisions in the reproduction are driven by *profiled* costs
obtained from these models, mirroring how the real system profiles real
GPUs, so the full planner/executor code path is exercised.
"""

from repro.cluster.device import A100_40GB, DeviceSpec, SimulatedGPU
from repro.cluster.network import LinkSpec, NetworkModel, EFA_400GBPS, NVSWITCH
from repro.cluster.topology import ClusterTopology, DeviceCoordinate

__all__ = [
    "DeviceSpec",
    "SimulatedGPU",
    "A100_40GB",
    "LinkSpec",
    "NetworkModel",
    "NVSWITCH",
    "EFA_400GBPS",
    "ClusterTopology",
    "DeviceCoordinate",
]
