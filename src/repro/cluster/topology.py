"""Cluster topology and 3D-parallel rank mapping.

A cluster is ``num_nodes`` nodes each holding ``gpus_per_node`` devices.  A
3D parallel configuration (data × pipeline × tensor) is mapped onto the
cluster following the Megatron-LM convention: tensor-parallel groups are
packed innermost (so they stay intra-node), then pipeline stages, then data
parallel replicas outermost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.cluster.device import A100_40GB, DeviceSpec
from repro.cluster.network import NetworkModel


@dataclass(frozen=True)
class DeviceCoordinate:
    """Logical coordinate of a device under 3D parallelism.

    Attributes:
        data_rank: Index of the data-parallel replica.
        pipeline_rank: Pipeline stage index (0 = first stage).
        tensor_rank: Tensor-parallel shard index within the stage.
    """

    data_rank: int
    pipeline_rank: int
    tensor_rank: int


@dataclass(frozen=True)
class PhysicalDevice:
    """A physical GPU identified by node and local index."""

    node: int
    local_index: int

    @property
    def global_index(self) -> int:
        """Stable global index assuming a fixed gpus-per-node of 8 is *not*
        assumed; use :meth:`ClusterTopology.global_index` instead."""
        raise AttributeError(
            "global index depends on the topology; use ClusterTopology.global_index"
        )


class ClusterTopology:
    """Nodes × GPUs layout plus the logical-to-physical rank mapping."""

    def __init__(
        self,
        num_nodes: int,
        gpus_per_node: int = 8,
        device_spec: DeviceSpec = A100_40GB,
        network: NetworkModel | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if gpus_per_node < 1:
            raise ValueError(f"gpus_per_node must be >= 1, got {gpus_per_node}")
        self.num_nodes = num_nodes
        self.gpus_per_node = gpus_per_node
        self.device_spec = device_spec
        self.network = network or NetworkModel()

    @classmethod
    def for_num_gpus(
        cls,
        num_gpus: int,
        gpus_per_node: int = 8,
        device_spec: DeviceSpec = A100_40GB,
        network: NetworkModel | None = None,
    ) -> "ClusterTopology":
        """Build the smallest topology holding ``num_gpus`` devices.

        Mirrors the paper's cluster sizes (4, 8, 16, 32 GPUs on p4d nodes of
        8): clusters smaller than one node occupy part of a node.
        """
        if num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {num_gpus}")
        if num_gpus <= gpus_per_node:
            return cls(1, num_gpus, device_spec, network)
        if num_gpus % gpus_per_node != 0:
            raise ValueError(
                f"num_gpus={num_gpus} is not a multiple of gpus_per_node={gpus_per_node}"
            )
        return cls(num_gpus // gpus_per_node, gpus_per_node, device_spec, network)

    @property
    def num_gpus(self) -> int:
        """Total number of devices in the cluster."""
        return self.num_nodes * self.gpus_per_node

    def devices(self) -> Iterator[PhysicalDevice]:
        """Iterate over all physical devices in global-index order."""
        for node in range(self.num_nodes):
            for local in range(self.gpus_per_node):
                yield PhysicalDevice(node=node, local_index=local)

    def global_index(self, device: PhysicalDevice) -> int:
        """Global index of ``device`` (row-major over nodes then GPUs)."""
        return device.node * self.gpus_per_node + device.local_index

    def device_of_global_index(self, index: int) -> PhysicalDevice:
        """Inverse of :meth:`global_index`."""
        if not 0 <= index < self.num_gpus:
            raise ValueError(f"global index {index} out of range [0, {self.num_gpus})")
        return PhysicalDevice(node=index // self.gpus_per_node, local_index=index % self.gpus_per_node)

    def same_node(self, a: int, b: int) -> bool:
        """Whether global device indices ``a`` and ``b`` share a node."""
        return a // self.gpus_per_node == b // self.gpus_per_node

    def node_of(self, index: int) -> int:
        """Node holding the device with global index ``index``."""
        if not 0 <= index < self.num_gpus:
            raise ValueError(f"global index {index} out of range [0, {self.num_gpus})")
        return index // self.gpus_per_node

    def node_devices(self, node: int) -> tuple[int, ...]:
        """Global device indices of ``node``, ascending.

        The fleet layer uses this to reason about whole-node events — e.g.
        injecting a correlated failure or arrival for every device of a
        node at once.
        """
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
        start = node * self.gpus_per_node
        return tuple(range(start, start + self.gpus_per_node))

    def map_coordinate(
        self, coord: DeviceCoordinate, pipeline_parallel: int, tensor_parallel: int
    ) -> int:
        """Map a logical coordinate to a global device index.

        Tensor ranks are innermost so a tensor-parallel group is contiguous
        (and hence intra-node when ``tensor_parallel <= gpus_per_node``),
        followed by pipeline ranks, with data-parallel replicas outermost.
        """
        if coord.tensor_rank >= tensor_parallel:
            raise ValueError("tensor_rank out of range")
        if coord.pipeline_rank >= pipeline_parallel:
            raise ValueError("pipeline_rank out of range")
        index = (
            coord.data_rank * pipeline_parallel * tensor_parallel
            + coord.pipeline_rank * tensor_parallel
            + coord.tensor_rank
        )
        if index >= self.num_gpus:
            raise ValueError(
                f"coordinate {coord} does not fit in a cluster of {self.num_gpus} GPUs"
            )
        return index

    def stage_adjacent_same_node(
        self, pipeline_parallel: int, tensor_parallel: int
    ) -> bool:
        """Whether adjacent pipeline stages (same data/tensor rank) are on
        the same node — determines which link class pipeline P2P uses."""
        coord_a = DeviceCoordinate(data_rank=0, pipeline_rank=0, tensor_rank=0)
        coord_b = DeviceCoordinate(data_rank=0, pipeline_rank=min(1, pipeline_parallel - 1), tensor_rank=0)
        a = self.map_coordinate(coord_a, pipeline_parallel, tensor_parallel)
        b = self.map_coordinate(coord_b, pipeline_parallel, tensor_parallel)
        return self.same_node(a, b)
