"""Analytic GPU device model.

The model follows a simple roofline: a kernel that performs ``flops``
floating point operations and moves ``bytes`` of data takes

    time = max(flops / achievable_flops, bytes / achievable_bandwidth) + launch_overhead

Achievable rates are the peak rates scaled by an efficiency factor, which is
how real training kernels behave (they rarely reach peak).  A configurable
multiplicative noise term models run-to-run variation; this is the source of
the execution-time variance that the adaptive schedule (paper §5, Fig. 7) is
designed to tolerate.

Time is measured in **milliseconds** and memory in **bytes** throughout the
package unless a name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of an accelerator device.

    Attributes:
        name: Human readable device name.
        peak_flops: Peak throughput in FLOP/s (half precision with tensor cores
            for A100: 312 TFLOP/s).
        memory_bandwidth: Peak HBM bandwidth in bytes/s.
        memory_capacity: Usable device memory in bytes.
        compute_efficiency: Fraction of peak FLOP/s achievable by dense
            transformer kernels.
        bandwidth_efficiency: Fraction of peak bandwidth achievable.
        kernel_overhead_ms: Fixed per-kernel launch overhead in milliseconds.
    """

    name: str
    peak_flops: float
    memory_bandwidth: float
    memory_capacity: float
    compute_efficiency: float = 0.45
    bandwidth_efficiency: float = 0.75
    kernel_overhead_ms: float = 0.02

    def __post_init__(self) -> None:
        check_positive("peak_flops", self.peak_flops)
        check_positive("memory_bandwidth", self.memory_bandwidth)
        check_positive("memory_capacity", self.memory_capacity)
        check_positive("compute_efficiency", self.compute_efficiency)
        check_positive("bandwidth_efficiency", self.bandwidth_efficiency)
        check_non_negative("kernel_overhead_ms", self.kernel_overhead_ms)

    @property
    def achievable_flops(self) -> float:
        """Sustained FLOP/s after the efficiency derating."""
        return self.peak_flops * self.compute_efficiency

    @property
    def achievable_bandwidth(self) -> float:
        """Sustained bytes/s after the efficiency derating."""
        return self.memory_bandwidth * self.bandwidth_efficiency

    def with_memory_capacity(self, memory_capacity: float) -> "DeviceSpec":
        """Return a copy with a different memory capacity (e.g. to model
        memory reserved by the framework)."""
        return replace(self, memory_capacity=memory_capacity)


#: The device used throughout the paper's evaluation (A100 40 GB SXM).
A100_40GB = DeviceSpec(
    name="A100-40GB",
    peak_flops=312e12,
    memory_bandwidth=1.555e12,
    memory_capacity=40 * 1024**3,
)


class SimulatedGPU:
    """Converts analytic kernel descriptions into execution times.

    The simulated GPU plays two roles:

    * during *profiling* (``noise_std=0``) it provides the ground-truth costs
      that the cost model interpolates, exactly as the real system profiles a
      physical GPU;
    * during *execution simulation* a non-zero ``noise_std`` injects
      multiplicative Gaussian noise so that the planner's predictions and the
      "measured" execution differ, which is what the paper's Fig. 7 and
      Fig. 18 study.
    """

    def __init__(
        self,
        spec: DeviceSpec = A100_40GB,
        noise_std: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        check_non_negative("noise_std", noise_std)
        self.spec = spec
        self.noise_std = noise_std
        self._rng: Optional[np.random.Generator] = new_rng(seed) if noise_std > 0 else None

    def kernel_time_ms(self, flops: float, bytes_moved: float, kernels: int = 1) -> float:
        """Execution time of a fused group of kernels in milliseconds.

        Args:
            flops: Total floating point operations.
            bytes_moved: Total bytes read + written from HBM.
            kernels: Number of distinct kernel launches (adds fixed overhead).
        """
        check_non_negative("flops", flops)
        check_non_negative("bytes_moved", bytes_moved)
        if kernels < 1:
            raise ValueError(f"kernels must be >= 1, got {kernels}")
        compute_s = flops / self.spec.achievable_flops
        memory_s = bytes_moved / self.spec.achievable_bandwidth
        time_ms = max(compute_s, memory_s) * 1e3 + kernels * self.spec.kernel_overhead_ms
        return self._apply_noise(time_ms)

    def _apply_noise(self, time_ms: float) -> float:
        """Multiply by (1 + N(0, noise_std)) clipped so time stays positive."""
        if self._rng is None or self.noise_std == 0.0:
            return time_ms
        factor = 1.0 + float(self._rng.normal(0.0, self.noise_std))
        return time_ms * max(factor, 0.05)

    @property
    def memory_capacity(self) -> float:
        """Usable device memory in bytes."""
        return self.spec.memory_capacity
